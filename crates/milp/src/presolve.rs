//! Presolve: cheap model reductions applied before the simplex.
//!
//! Three classical, always-safe reductions:
//!
//! 1. **Fixed-variable substitution** — variables with `lower == upper` are
//!    folded into constraint right-hand sides and the objective constant.
//! 2. **Empty/redundant row elimination** — rows with no terms are checked
//!    for trivial feasibility and dropped; rows whose min/max activity
//!    (from variable bounds) already implies the relation are dropped.
//! 3. **Singleton-row bound tightening** — a row `a·x ≤ b` with one term
//!    becomes a bound update on `x` and is dropped; infeasible tightenings
//!    are reported immediately.
//!
//! Reductions preserve the optimal objective exactly; [`Presolved::restore`]
//! maps a reduced solution back to the original variable space.

use crate::model::{Model, Relation, VarId, VarKind};

/// Outcome of presolving.
#[derive(Debug, Clone)]
pub enum PresolveResult {
    /// A reduced model plus the mapping back.
    Reduced(Presolved),
    /// The bounds/rows alone prove infeasibility.
    Infeasible,
}

/// A presolved model with the bookkeeping to undo it.
#[derive(Debug, Clone)]
pub struct Presolved {
    /// The reduced model (same variable count; fixed variables keep their
    /// pinned bounds so indices stay stable — simplicity over compaction).
    pub model: Model,
    /// Objective constant contributed by fixed variables (already included
    /// in `model`'s evaluation because bounds pin them; recorded for
    /// diagnostics).
    pub fixed_objective: f64,
    /// Rows dropped as redundant.
    pub dropped_rows: usize,
    /// Bounds tightened by singleton rows.
    pub tightened_bounds: usize,
}

impl Presolved {
    /// Map a reduced-model solution back to the original space (identity
    /// here — indices are preserved — but kept as an explicit seam so later
    /// compaction passes don't change call sites).
    pub fn restore(&self, values: Vec<f64>) -> Vec<f64> {
        values
    }
}

/// Run presolve on `model`.
pub fn presolve(model: &Model) -> PresolveResult {
    let mut m = model.clone();
    let mut dropped = 0usize;
    let mut tightened = 0usize;

    // Pass 1: singleton rows become bound updates.
    let mut kept = Vec::with_capacity(m.constraints.len());
    for c in m.constraints.clone() {
        if c.terms.len() == 1 {
            let (v, a) = c.terms[0];
            debug_assert!(a.abs() > 1e-15);
            let (mut lo, mut hi) = m.bounds(v);
            let bound = c.rhs / a;
            match (c.relation, a > 0.0) {
                (Relation::Le, true) | (Relation::Ge, false) => hi = hi.min(bound),
                (Relation::Le, false) | (Relation::Ge, true) => lo = lo.max(bound),
                (Relation::Eq, _) => {
                    lo = lo.max(bound);
                    hi = hi.min(bound);
                }
            }
            // Integer variables can round the bounds inward.
            if matches!(model.vars[v.0].kind, VarKind::Integer | VarKind::Binary) {
                lo = lo.ceil();
                hi = hi.floor();
            }
            if lo > hi + 1e-9 {
                return PresolveResult::Infeasible;
            }
            m.set_bounds(v, lo, hi.max(lo));
            tightened += 1;
            continue; // row absorbed
        }
        kept.push(c);
    }
    m.constraints = kept;

    // Pass 2: activity-based redundancy (uses the tightened bounds).
    let mut kept = Vec::with_capacity(m.constraints.len());
    for c in m.constraints.clone() {
        if c.terms.is_empty() {
            let ok = match c.relation {
                Relation::Le => 0.0 <= c.rhs + 1e-9,
                Relation::Eq => c.rhs.abs() <= 1e-9,
                Relation::Ge => 0.0 >= c.rhs - 1e-9,
            };
            if !ok {
                return PresolveResult::Infeasible;
            }
            dropped += 1;
            continue;
        }
        let (mut min_act, mut max_act) = (0.0f64, 0.0f64);
        for &(v, a) in &c.terms {
            let (lo, hi) = m.bounds(v);
            if a >= 0.0 {
                min_act += a * lo;
                max_act += a * hi;
            } else {
                min_act += a * hi;
                max_act += a * lo;
            }
        }
        let redundant = match c.relation {
            Relation::Le => max_act <= c.rhs + 1e-9,
            Relation::Ge => min_act >= c.rhs - 1e-9,
            Relation::Eq => false,
        };
        let impossible = match c.relation {
            Relation::Le => min_act > c.rhs + 1e-9,
            Relation::Ge => max_act < c.rhs - 1e-9,
            Relation::Eq => min_act > c.rhs + 1e-9 || max_act < c.rhs - 1e-9,
        };
        if impossible {
            return PresolveResult::Infeasible;
        }
        if redundant {
            dropped += 1;
            continue;
        }
        kept.push(c);
    }
    m.constraints = kept;

    // Fixed-variable objective constant (diagnostic only).
    let fixed_objective: f64 = (0..m.num_vars())
        .map(VarId)
        .filter(|&v| {
            let (lo, hi) = m.bounds(v);
            (hi - lo).abs() < 1e-15
        })
        .map(|v| m.objective_coeff(v) * m.bounds(v).0)
        .sum();

    PresolveResult::Reduced(Presolved {
        model: m,
        fixed_objective,
        dropped_rows: dropped,
        tightened_bounds: tightened,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_bound::{solve_milp, MilpOptions, MilpStatus};
    use crate::simplex::{solve_lp, LpStatus};

    #[test]
    fn singleton_rows_become_bounds() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0, 1.0, VarKind::Continuous);
        m.add_constraint([(x, 2.0)], Relation::Le, 8.0); // x ≤ 4
        m.add_constraint([(x, 1.0)], Relation::Ge, 1.0); // x ≥ 1
        let PresolveResult::Reduced(p) = presolve(&m) else {
            panic!("unexpected infeasible");
        };
        assert_eq!(p.model.num_constraints(), 0);
        assert_eq!(p.tightened_bounds, 2);
        assert_eq!(p.model.bounds(x), (1.0, 4.0));
    }

    #[test]
    fn integer_singleton_rounds_inward() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0, 1.0, VarKind::Integer);
        m.add_constraint([(x, 2.0)], Relation::Le, 7.0); // x ≤ 3.5 → 3
        let PresolveResult::Reduced(p) = presolve(&m) else {
            panic!("unexpected infeasible");
        };
        assert_eq!(p.model.bounds(x).1, 3.0);
    }

    #[test]
    fn contradictory_singletons_detected() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0, 1.0, VarKind::Continuous);
        m.add_constraint([(x, 1.0)], Relation::Ge, 8.0);
        m.add_constraint([(x, 1.0)], Relation::Le, 2.0);
        assert!(matches!(presolve(&m), PresolveResult::Infeasible));
    }

    #[test]
    fn redundant_rows_dropped() {
        let mut m = Model::new();
        let x = m.add_binary(1.0);
        let y = m.add_binary(1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Le, 5.0); // implied
        let PresolveResult::Reduced(p) = presolve(&m) else {
            panic!();
        };
        assert_eq!(p.dropped_rows, 1);
        assert_eq!(p.model.num_constraints(), 0);
    }

    #[test]
    fn activity_infeasibility_detected() {
        let mut m = Model::new();
        let x = m.add_binary(1.0);
        let y = m.add_binary(1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 3.0);
        assert!(matches!(presolve(&m), PresolveResult::Infeasible));
    }

    #[test]
    fn presolve_preserves_lp_optimum() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 9.0, -1.0, VarKind::Continuous);
        let y = m.add_var(0.0, 9.0, -2.0, VarKind::Continuous);
        m.add_constraint([(x, 1.0)], Relation::Le, 4.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Le, 7.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Le, 100.0); // redundant
        let before = solve_lp(&m);
        let PresolveResult::Reduced(p) = presolve(&m) else {
            panic!();
        };
        let after = solve_lp(&p.model);
        assert_eq!(before.status, LpStatus::Optimal);
        assert_eq!(after.status, LpStatus::Optimal);
        assert!((before.objective - after.objective).abs() < 1e-6);
    }

    #[test]
    fn presolve_preserves_milp_optimum() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..6).map(|i| m.add_binary(-(1.0 + i as f64))).collect();
        m.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::Le, 3.0);
        m.add_constraint([(vars[0], 1.0)], Relation::Le, 0.0); // fixes v0 = 0
        let before = solve_milp(&m, &MilpOptions::default());
        let PresolveResult::Reduced(p) = presolve(&m) else {
            panic!();
        };
        let after = solve_milp(&p.model, &MilpOptions::default());
        assert_eq!(before.status, MilpStatus::Optimal);
        assert_eq!(after.status, MilpStatus::Optimal);
        assert!((before.objective - after.objective).abs() < 1e-6);
        assert_eq!(p.restore(after.values.clone()).len(), 6);
    }

    #[test]
    fn empty_row_feasibility() {
        let mut m = Model::new();
        let _x = m.add_binary(1.0);
        m.add_constraint(std::iter::empty(), Relation::Le, 1.0); // 0 ≤ 1 ok
        let PresolveResult::Reduced(p) = presolve(&m) else {
            panic!();
        };
        assert_eq!(p.dropped_rows, 1);

        let mut m2 = Model::new();
        let _x = m2.add_binary(1.0);
        m2.add_constraint(std::iter::empty(), Relation::Ge, 1.0); // 0 ≥ 1 bad
        assert!(matches!(presolve(&m2), PresolveResult::Infeasible));
    }
}

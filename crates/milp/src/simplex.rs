//! Dense two-phase primal simplex.
//!
//! The solver works on the bounded standard form obtained from a
//! [`Model`](crate::model::Model):
//!
//! 1. every variable is shifted by its lower bound (`x = l + x'`, `x' ≥ 0`);
//!    variables with `l = -∞` are rejected (the SoCL models never need them),
//! 2. finite upper bounds become explicit `x' ≤ u - l` rows,
//! 3. rows are normalized to non-negative right-hand sides and equipped with
//!    slack/artificial columns,
//! 4. phase 1 minimizes the artificial sum (infeasible if it stays positive),
//!    phase 2 minimizes the true objective.
//!
//! Pivoting uses Dantzig's rule with an automatic switch to Bland's rule
//! after a stall, which guarantees termination on degenerate instances.

use crate::model::{Model, Relation};
use socl_net::fcmp;

const EPS: f64 = 1e-9;

/// Outcome status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraints admit no solution.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration cap was exceeded (numerical trouble).
    IterationLimit,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub struct LpSolution {
    pub status: LpStatus,
    /// Objective value (meaningful only for `Optimal`).
    pub objective: f64,
    /// Variable values in the original model space (only for `Optimal`).
    pub values: Vec<f64>,
    /// Simplex pivots performed (across both phases).
    pub iterations: usize,
}

struct Tableau {
    m: usize,
    n: usize,
    /// Row-major `m × n`.
    a: Vec<f64>,
    b: Vec<f64>,
    /// Current (canonicalized) cost row and its negated objective value.
    cost: Vec<f64>,
    cost_val: f64,
    /// Secondary cost row carried through phase 1 (the real objective).
    cost2: Vec<f64>,
    cost2_val: f64,
    basis: Vec<usize>,
    iterations: usize,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.n + c]
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.at(row, col);
        debug_assert!(piv.abs() > EPS, "pivot on ~zero element");
        let inv = 1.0 / piv;
        for c in 0..self.n {
            self.a[row * self.n + c] *= inv;
        }
        self.b[row] *= inv;
        for r in 0..self.m {
            if r == row {
                continue;
            }
            let f = self.at(r, col);
            if f.abs() > 0.0 {
                for c in 0..self.n {
                    self.a[r * self.n + c] -= f * self.a[row * self.n + c];
                }
                self.b[r] -= f * self.b[row];
            }
        }
        let f = self.cost[col];
        if f.abs() > 0.0 {
            for c in 0..self.n {
                self.cost[c] -= f * self.a[row * self.n + c];
            }
            self.cost_val -= f * self.b[row];
        }
        let f2 = self.cost2[col];
        if f2.abs() > 0.0 {
            for c in 0..self.n {
                self.cost2[c] -= f2 * self.a[row * self.n + c];
            }
            self.cost2_val -= f2 * self.b[row];
        }
        self.basis[row] = col;
        self.iterations += 1;
    }

    /// Run simplex iterations until optimal / unbounded / iteration cap.
    /// `allowed` restricts entering columns (used to exclude artificials in
    /// phase 2).
    fn optimize(&mut self, allowed: &[bool], max_iter: usize) -> LpStatus {
        let mut stall = 0usize;
        let bland_after = 2 * (self.m + self.n) + 64;
        loop {
            if self.iterations >= max_iter {
                return LpStatus::IterationLimit;
            }
            // Entering column.
            let use_bland = stall > bland_after;
            let mut enter: Option<usize> = None;
            if use_bland {
                for (c, &ok) in allowed.iter().enumerate().take(self.n) {
                    if ok && self.cost[c] < -EPS {
                        enter = Some(c);
                        break;
                    }
                }
            } else {
                let mut best = -EPS;
                for (c, &ok) in allowed.iter().enumerate().take(self.n) {
                    // Dantzig rule: most negative reduced cost enters. Shared
                    // NaN-safe comparison (rule L1) keeps the pick total.
                    if ok && fcmp::lt(self.cost[c], best) {
                        best = self.cost[c];
                        enter = Some(c);
                    }
                }
            }
            let Some(col) = enter else {
                return LpStatus::Optimal;
            };
            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.m {
                let arc = self.at(r, col);
                if arc > EPS {
                    let ratio = self.b[r] / arc;
                    // EPS-banded ratio test with index tie-break, compared
                    // through the shared NaN-safe helper (rule L1).
                    let better = fcmp::lt(ratio, best_ratio - EPS)
                        || (fcmp::lt(ratio, best_ratio + EPS)
                            && leave.is_some_and(|l| self.basis[r] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(row) = leave else {
                return LpStatus::Unbounded;
            };
            let before = self.cost_val;
            self.pivot(row, col);
            if (self.cost_val - before).abs() < EPS {
                stall += 1;
            } else {
                stall = 0;
            }
        }
    }
}

/// Solve the LP relaxation of `model` (integrality is ignored).
///
/// # Panics
/// Panics if any variable has an infinite lower bound (not needed by the
/// SoCL formulations and excluded for simplicity).
pub fn solve_lp(model: &Model) -> LpSolution {
    solve_lp_with_limit(model, 200_000)
}

/// [`solve_lp`] with an explicit pivot cap.
pub fn solve_lp_with_limit(model: &Model, max_iter: usize) -> LpSolution {
    let nv = model.num_vars();
    for i in 0..nv {
        let (l, _) = model.bounds(crate::model::VarId(i));
        assert!(l.is_finite(), "variable {i} has infinite lower bound");
    }

    // Shift by lower bounds; collect objective constant.
    let lowers: Vec<f64> = (0..nv)
        .map(|i| model.bounds(crate::model::VarId(i)).0)
        .collect();
    let obj_const: f64 = (0..nv)
        .map(|i| model.objective_coeff(crate::model::VarId(i)) * lowers[i])
        .sum();

    // Build row list: model constraints (shifted rhs) + upper-bound rows.
    struct Row {
        coeffs: Vec<(usize, f64)>,
        rel: Relation,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(model.num_constraints() + nv);
    for c in &model.constraints {
        let shift: f64 = c.terms.iter().map(|&(v, a)| a * lowers[v.0]).sum();
        rows.push(Row {
            coeffs: c.terms.iter().map(|&(v, a)| (v.0, a)).collect(),
            rel: c.relation,
            rhs: c.rhs - shift,
        });
    }
    for i in 0..nv {
        let (l, u) = model.bounds(crate::model::VarId(i));
        if u.is_finite() {
            // Also covers fixed variables (u == l): the row x' ≤ 0 pins them.
            rows.push(Row {
                coeffs: vec![(i, 1.0)],
                rel: Relation::Le,
                rhs: u - l,
            });
        }
    }

    // Normalize to rhs >= 0.
    for row in &mut rows {
        if row.rhs < 0.0 {
            row.rhs = -row.rhs;
            for (_, a) in &mut row.coeffs {
                *a = -*a;
            }
            row.rel = match row.rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: [structural 0..nv | slacks | artificials].
    let n_slack = rows
        .iter()
        .filter(|r| !matches!(r.rel, Relation::Eq))
        .count();
    let n_art = rows
        .iter()
        .filter(|r| matches!(r.rel, Relation::Eq | Relation::Ge))
        .count();
    let n = nv + n_slack + n_art;

    let mut a = vec![0.0; m * n];
    let mut b = vec![0.0; m];
    let mut basis = vec![usize::MAX; m];
    let mut art_cols: Vec<usize> = Vec::with_capacity(n_art);
    let mut slack_idx = nv;
    let mut art_idx = nv + n_slack;

    for (r, row) in rows.iter().enumerate() {
        for &(v, coef) in &row.coeffs {
            a[r * n + v] += coef;
        }
        b[r] = row.rhs;
        match row.rel {
            Relation::Le => {
                a[r * n + slack_idx] = 1.0;
                basis[r] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                a[r * n + slack_idx] = -1.0;
                slack_idx += 1;
                a[r * n + art_idx] = 1.0;
                basis[r] = art_idx;
                art_cols.push(art_idx);
                art_idx += 1;
            }
            Relation::Eq => {
                a[r * n + art_idx] = 1.0;
                basis[r] = art_idx;
                art_cols.push(art_idx);
                art_idx += 1;
            }
        }
    }

    // Phase-1 cost: minimize Σ artificials, canonicalized against the
    // artificial basis (subtract their rows).
    let mut cost1 = vec![0.0; n];
    for &c in &art_cols {
        cost1[c] = 1.0;
    }
    let mut cost1_val = 0.0;
    for (r, &bv) in basis.iter().enumerate() {
        if art_cols.contains(&bv) {
            for c in 0..n {
                cost1[c] -= a[r * n + c];
            }
            cost1_val -= b[r];
        }
    }

    // Phase-2 cost (structural objective), canonical from the start because
    // the initial basis has zero structural cost.
    let mut cost2 = vec![0.0; n];
    for (i, c) in cost2.iter_mut().enumerate().take(nv) {
        *c = model.objective_coeff(crate::model::VarId(i));
    }

    let mut t = Tableau {
        m,
        n,
        a,
        b,
        cost: cost1,
        cost_val: cost1_val,
        cost2,
        cost2_val: 0.0,
        basis,
        iterations: 0,
    };

    let empty = LpSolution {
        status: LpStatus::Infeasible,
        objective: 0.0,
        values: Vec::new(),
        iterations: 0,
    };

    // Phase 1 (skipped when there are no artificials).
    if !art_cols.is_empty() {
        let allowed = vec![true; n];
        match t.optimize(&allowed, max_iter) {
            LpStatus::Optimal => {}
            LpStatus::IterationLimit => {
                return LpSolution {
                    status: LpStatus::IterationLimit,
                    iterations: t.iterations,
                    ..empty
                }
            }
            // Phase 1 objective is bounded below by 0, so Unbounded cannot
            // happen; treat defensively as infeasible.
            _ => return empty,
        }
        if -t.cost_val > 1e-7 {
            return LpSolution {
                status: LpStatus::Infeasible,
                iterations: t.iterations,
                ..empty
            };
        }
        // Pivot lingering artificials out of the basis where possible.
        for r in 0..t.m {
            if art_cols.contains(&t.basis[r]) {
                if let Some(col) = (0..nv + n_slack).find(|&c| t.at(r, c).abs() > EPS) {
                    t.pivot(r, col);
                }
                // Otherwise the row is redundant (all-zero over real
                // columns); it stays with its artificial at value 0 and
                // never re-enters because phase 2 disallows artificials.
            }
        }
    }

    // Phase 2.
    let mut allowed = vec![true; n];
    for &c in &art_cols {
        allowed[c] = false;
    }
    t.cost = t.cost2.clone();
    t.cost_val = t.cost2_val;
    let status = t.optimize(&allowed, max_iter);
    match status {
        LpStatus::Optimal => {}
        s => {
            return LpSolution {
                status: s,
                objective: 0.0,
                values: Vec::new(),
                iterations: t.iterations,
            }
        }
    }

    // Extract solution (shift back by lower bounds).
    let mut x = lowers.clone();
    for (r, &bv) in t.basis.iter().enumerate() {
        if bv < nv {
            x[bv] = lowers[bv] + t.b[r];
        }
    }
    let objective = model.objective_value(&x);
    debug_assert!(objective.is_finite());
    let _ = obj_const;
    LpSolution {
        status: LpStatus::Optimal,
        objective,
        values: x,
        iterations: t.iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Relation, VarKind};

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
        let mut m = Model::new();
        let x = m.add_var(0.0, f64::INFINITY, -3.0, VarKind::Continuous);
        let y = m.add_var(0.0, f64::INFINITY, -5.0, VarKind::Continuous);
        m.add_constraint([(x, 1.0)], Relation::Le, 4.0);
        m.add_constraint([(y, 2.0)], Relation::Le, 12.0);
        m.add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0);
        let s = solve_lp(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - -36.0).abs() < 1e-6);
        assert!((s.values[x.0] - 2.0).abs() < 1e-6);
        assert!((s.values[y.0] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x + 2y s.t. x + y = 10, x ≥ 3 → (10? no): minimize puts y low?
        // c = (1,2): prefer x. x + y = 10, x ≥ 3, y ≥ 0 → x=10, y=0, obj 10.
        let mut m = Model::new();
        let x = m.add_var(0.0, f64::INFINITY, 1.0, VarKind::Continuous);
        let y = m.add_var(0.0, f64::INFINITY, 2.0, VarKind::Continuous);
        m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Eq, 10.0);
        m.add_constraint([(x, 1.0)], Relation::Ge, 3.0);
        let s = solve_lp(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-6);
        assert!((s.values[x.0] - 10.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0, 1.0, VarKind::Continuous);
        m.add_constraint([(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(solve_lp(&m).status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_var(0.0, f64::INFINITY, -1.0, VarKind::Continuous);
        m.add_constraint([(x, -1.0)], Relation::Le, 0.0); // -x ≤ 0 always true
        assert_eq!(solve_lp(&m).status, LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_respected() {
        // min -x with x ∈ [0, 7] → x = 7.
        let mut m = Model::new();
        let x = m.add_var(0.0, 7.0, -1.0, VarKind::Continuous);
        let s = solve_lp(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.values[x.0] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn lower_bound_shift_works() {
        // min x + y with x ∈ [2, 5], y ∈ [-3, 4], x + y ≥ 1.
        // Optimum: x=2, y=-1 → obj 1.
        let mut m = Model::new();
        let x = m.add_var(2.0, 5.0, 1.0, VarKind::Continuous);
        let y = m.add_var(-3.0, 4.0, 1.0, VarKind::Continuous);
        m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 1.0);
        let s = solve_lp(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        // The optimal face is the whole segment x + y = 1 with x ∈ [2, 4];
        // check objective and feasibility rather than a particular vertex.
        assert!((s.objective - 1.0).abs() < 1e-6, "obj {}", s.objective);
        assert!(m.is_feasible(&s.values, 1e-6));
    }

    #[test]
    fn fixed_variable_handled() {
        let mut m = Model::new();
        let x = m.add_var(3.0, 3.0, 1.0, VarKind::Continuous);
        let y = m.add_var(0.0, 10.0, 1.0, VarKind::Continuous);
        m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 5.0);
        let s = solve_lp(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.values[x.0] - 3.0).abs() < 1e-9);
        assert!((s.values[y.0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate LP; Bland fallback must avoid cycling.
        let mut m = Model::new();
        let x1 = m.add_var(0.0, f64::INFINITY, -0.75, VarKind::Continuous);
        let x2 = m.add_var(0.0, f64::INFINITY, 150.0, VarKind::Continuous);
        let x3 = m.add_var(0.0, f64::INFINITY, -0.02, VarKind::Continuous);
        let x4 = m.add_var(0.0, f64::INFINITY, 6.0, VarKind::Continuous);
        m.add_constraint(
            [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Relation::Le,
            0.0,
        );
        m.add_constraint(
            [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Relation::Le,
            0.0,
        );
        m.add_constraint([(x3, 1.0)], Relation::Le, 1.0);
        let s = solve_lp(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - -0.05).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn no_constraints_picks_bounds() {
        let mut m = Model::new();
        let x = m.add_var(1.0, 3.0, 2.0, VarKind::Continuous); // min → lower
        let y = m.add_var(1.0, 3.0, -2.0, VarKind::Continuous); // min → upper
        let s = solve_lp(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.values[x.0] - 1.0).abs() < 1e-6);
        assert!((s.values[y.0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equalities_ok() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0, 1.0, VarKind::Continuous);
        let y = m.add_var(0.0, 10.0, 1.0, VarKind::Continuous);
        m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Eq, 4.0);
        m.add_constraint([(x, 2.0), (y, 2.0)], Relation::Eq, 8.0); // redundant
        let s = solve_lp(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn solution_is_model_feasible() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 4.0, -1.0, VarKind::Continuous);
        let y = m.add_var(1.0, 6.0, -2.0, VarKind::Continuous);
        m.add_constraint([(x, 1.0), (y, 2.0)], Relation::Le, 9.0);
        m.add_constraint([(x, 1.0), (y, -1.0)], Relation::Ge, -3.0);
        let s = solve_lp(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(m.is_feasible(&s.values, 1e-6));
    }
}

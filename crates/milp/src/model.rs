//! Model-builder API for linear and mixed-integer programs.
//!
//! Minimization is canonical: `Model` always *minimizes* its objective
//! (negate coefficients to maximize). Variables carry bounds and a kind
//! (continuous / integer / binary); constraints are sparse linear rows.

/// Handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub usize);

/// Domain of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds.
    Integer,
    /// Shorthand for integer in `[0, 1]`.
    Binary,
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ = b`
    Eq,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
}

/// A sparse linear constraint.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// `(variable, coefficient)` terms; one entry per variable at most.
    pub terms: Vec<(VarId, f64)>,
    pub relation: Relation,
    pub rhs: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub lower: f64,
    pub upper: f64,
    pub obj: f64,
    pub kind: VarKind,
}

/// A linear / mixed-integer program (always a minimization).
///
/// ```
/// use socl_milp::{solve_milp, MilpOptions, MilpStatus, Model, Relation};
///
/// // max 10a + 13b + 7c  s.t.  3a + 4b + 2c ≤ 6,  a,b,c binary
/// // (negate for minimization)
/// let mut m = Model::new();
/// let a = m.add_binary(-10.0);
/// let b = m.add_binary(-13.0);
/// let c = m.add_binary(-7.0);
/// m.add_constraint([(a, 3.0), (b, 4.0), (c, 2.0)], Relation::Le, 6.0);
///
/// let sol = solve_milp(&m, &MilpOptions::default());
/// assert_eq!(sol.status, MilpStatus::Optimal);
/// assert!((sol.objective - -20.0).abs() < 1e-6); // b + c
/// ```
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Model {
    /// Empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a variable with the given bounds, objective coefficient and kind.
    ///
    /// # Panics
    /// Panics if `lower > upper` or a bound is NaN.
    pub fn add_var(&mut self, lower: f64, upper: f64, obj: f64, kind: VarKind) -> VarId {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN bound");
        let (lower, upper) = match kind {
            VarKind::Binary => (lower.max(0.0), upper.min(1.0)),
            _ => (lower, upper),
        };
        assert!(lower <= upper, "empty domain [{lower}, {upper}]");
        let id = VarId(self.vars.len());
        self.vars.push(Variable {
            lower,
            upper,
            obj,
            kind,
        });
        id
    }

    /// Convenience: a binary variable with objective coefficient `obj`.
    pub fn add_binary(&mut self, obj: f64) -> VarId {
        self.add_var(0.0, 1.0, obj, VarKind::Binary)
    }

    /// Convenience: a non-negative continuous variable.
    pub fn add_continuous(&mut self, upper: f64, obj: f64) -> VarId {
        self.add_var(0.0, upper, obj, VarKind::Continuous)
    }

    /// Add a constraint `Σ aᵢxᵢ (≤|=|≥) rhs`. Terms with duplicate variables
    /// are merged; zero coefficients are dropped.
    ///
    /// # Panics
    /// Panics on out-of-range variable ids or NaN coefficients.
    pub fn add_constraint(
        &mut self,
        terms: impl IntoIterator<Item = (VarId, f64)>,
        relation: Relation,
        rhs: f64,
    ) {
        assert!(!rhs.is_nan(), "NaN rhs");
        let mut merged: Vec<(VarId, f64)> = Vec::new();
        for (v, c) in terms {
            assert!(v.0 < self.vars.len(), "variable {v:?} out of range");
            assert!(!c.is_nan(), "NaN coefficient");
            if let Some(e) = merged.iter_mut().find(|(mv, _)| *mv == v) {
                e.1 += c;
            } else {
                merged.push((v, c));
            }
        }
        merged.retain(|(_, c)| c.abs() > 1e-15);
        self.constraints.push(Constraint {
            terms: merged,
            relation,
            rhs,
        });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable ids of integer/binary variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| matches!(v.kind, VarKind::Integer | VarKind::Binary))
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Bounds of a variable.
    pub fn bounds(&self, v: VarId) -> (f64, f64) {
        (self.vars[v.0].lower, self.vars[v.0].upper)
    }

    /// Objective coefficient of a variable.
    pub fn objective_coeff(&self, v: VarId) -> f64 {
        self.vars[v.0].obj
    }

    /// Tighten a variable's bounds (used by branch-and-bound).
    ///
    /// # Panics
    /// Panics if the new interval is empty.
    pub fn set_bounds(&mut self, v: VarId, lower: f64, upper: f64) {
        assert!(lower <= upper, "empty domain for {v:?}");
        self.vars[v.0].lower = lower;
        self.vars[v.0].upper = upper;
    }

    /// Evaluate the objective at `x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, &xi)| v.obj * xi).sum()
    }

    /// Check whether `x` satisfies all constraints and bounds within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (v, &xi) in self.vars.iter().zip(x) {
            if xi < v.lower - tol || xi > v.upper + tol {
                return false;
            }
            if matches!(v.kind, VarKind::Integer | VarKind::Binary) && (xi - xi.round()).abs() > tol
            {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v.0]).sum();
            let ok = match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
                Relation::Ge => lhs >= c.rhs - tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_var_and_bounds() {
        let mut m = Model::new();
        let x = m.add_var(-1.0, 5.0, 2.0, VarKind::Continuous);
        assert_eq!(m.bounds(x), (-1.0, 5.0));
        assert_eq!(m.objective_coeff(x), 2.0);
        assert_eq!(m.num_vars(), 1);
    }

    #[test]
    fn binary_bounds_are_clamped() {
        let mut m = Model::new();
        let b = m.add_var(-3.0, 9.0, 1.0, VarKind::Binary);
        assert_eq!(m.bounds(b), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn inverted_bounds_rejected() {
        Model::new().add_var(2.0, 1.0, 0.0, VarKind::Continuous);
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let mut m = Model::new();
        let x = m.add_continuous(10.0, 1.0);
        m.add_constraint([(x, 1.0), (x, 2.0)], Relation::Le, 6.0);
        assert_eq!(m.constraints[0].terms, vec![(x, 3.0)]);
    }

    #[test]
    fn zero_terms_are_dropped() {
        let mut m = Model::new();
        let x = m.add_continuous(10.0, 1.0);
        let y = m.add_continuous(10.0, 1.0);
        m.add_constraint([(x, 0.0), (y, 1.0)], Relation::Ge, 1.0);
        assert_eq!(m.constraints[0].terms, vec![(y, 1.0)]);
    }

    #[test]
    fn feasibility_checker() {
        let mut m = Model::new();
        let x = m.add_binary(1.0);
        let y = m.add_continuous(10.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Le, 5.0);
        assert!(m.is_feasible(&[1.0, 3.0], 1e-9));
        assert!(!m.is_feasible(&[1.0, 5.0], 1e-9)); // constraint violated
        assert!(!m.is_feasible(&[0.5, 1.0], 1e-9)); // fractional binary
        assert!(!m.is_feasible(&[0.0, -1.0], 1e-9)); // bound violated
        assert!(!m.is_feasible(&[0.0], 1e-9)); // wrong arity
    }

    #[test]
    fn objective_evaluation() {
        let mut m = Model::new();
        let x = m.add_var(0.0, 1.0, 3.0, VarKind::Continuous);
        let _y = m.add_var(0.0, 1.0, -2.0, VarKind::Continuous);
        assert_eq!(m.objective_value(&[1.0, 0.5]), 2.0);
        assert_eq!(m.objective_coeff(x), 3.0);
    }

    #[test]
    fn integer_vars_listing() {
        let mut m = Model::new();
        let _a = m.add_continuous(1.0, 0.0);
        let b = m.add_binary(0.0);
        let c = m.add_var(0.0, 7.0, 0.0, VarKind::Integer);
        assert_eq!(m.integer_vars(), vec![b, c]);
    }
}

//! Property tests: the simplex and branch-and-bound against brute force.

use crate::branch_bound::{solve_milp, MilpOptions, MilpStatus};
use crate::model::{Model, Relation, VarId};
use crate::simplex::{solve_lp, LpStatus};
use proptest::prelude::*;

/// A random binary program with n ≤ 10 variables and a few knapsack-style
/// rows, solvable by brute force.
#[derive(Debug, Clone)]
struct BinaryProgram {
    n: usize,
    obj: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>, // Σ aᵢxᵢ ≤ b
}

fn arb_binary_program() -> impl Strategy<Value = BinaryProgram> {
    (2usize..=9, 1usize..=3).prop_flat_map(|(n, m)| {
        let obj = proptest::collection::vec(-10.0f64..10.0, n);
        let rows =
            proptest::collection::vec((proptest::collection::vec(0.0f64..5.0, n), 2.0f64..12.0), m);
        (obj, rows).prop_map(move |(obj, rows)| BinaryProgram { n, obj, rows })
    })
}

impl BinaryProgram {
    fn to_model(&self) -> (Model, Vec<VarId>) {
        let mut m = Model::new();
        let vars: Vec<VarId> = self.obj.iter().map(|&c| m.add_binary(c)).collect();
        for (coeffs, b) in &self.rows {
            m.add_constraint(
                vars.iter().zip(coeffs).map(|(&v, &a)| (v, a)),
                Relation::Le,
                *b,
            );
        }
        (m, vars)
    }

    /// Brute-force optimum over all 2^n assignments (always feasible:
    /// all-zero satisfies every row since a ≥ 0 and b > 0).
    fn brute_force(&self) -> f64 {
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << self.n) {
            let x: Vec<f64> = (0..self.n).map(|i| ((mask >> i) & 1) as f64).collect();
            let ok = self.rows.iter().all(|(coeffs, b)| {
                coeffs.iter().zip(&x).map(|(a, xi)| a * xi).sum::<f64>() <= *b + 1e-9
            });
            if ok {
                let obj: f64 = self.obj.iter().zip(&x).map(|(c, xi)| c * xi).sum();
                best = best.min(obj);
            }
        }
        best
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Branch-and-bound matches exhaustive enumeration on binary programs.
    #[test]
    fn milp_matches_brute_force(bp in arb_binary_program()) {
        let (m, _) = bp.to_model();
        let sol = solve_milp(&m, &MilpOptions::default());
        prop_assert_eq!(sol.status, MilpStatus::Optimal);
        let exact = bp.brute_force();
        prop_assert!((sol.objective - exact).abs() < 1e-5,
            "bb {} vs brute {}", sol.objective, exact);
        prop_assert!(m.is_feasible(&sol.values, 1e-6));
    }

    /// The LP relaxation lower-bounds the ILP optimum.
    #[test]
    fn lp_bounds_ilp(bp in arb_binary_program()) {
        let (m, _) = bp.to_model();
        let lp = solve_lp(&m);
        prop_assert_eq!(lp.status, LpStatus::Optimal);
        let exact = bp.brute_force();
        prop_assert!(lp.objective <= exact + 1e-6,
            "relaxation {} above integer optimum {}", lp.objective, exact);
    }

    /// The simplex solution satisfies all constraints and bounds.
    #[test]
    fn lp_solution_feasible(bp in arb_binary_program()) {
        let (m, _) = bp.to_model();
        let lp = solve_lp(&m);
        prop_assert_eq!(lp.status, LpStatus::Optimal);
        // Feasible ignoring integrality: check rows and [0,1] box manually.
        for (v, &x) in lp.values.iter().enumerate() {
            prop_assert!((-1e-6..=1.0 + 1e-6).contains(&x), "var {v} = {x}");
        }
        for (coeffs, b) in &bp.rows {
            let lhs: f64 = coeffs.iter().zip(&lp.values).map(|(a, x)| a * x).sum();
            prop_assert!(lhs <= b + 1e-6);
        }
    }

    /// Solving twice gives identical results (determinism).
    #[test]
    fn deterministic(bp in arb_binary_program()) {
        let (m, _) = bp.to_model();
        let a = solve_milp(&m, &MilpOptions::default());
        let b = solve_milp(&m, &MilpOptions::default());
        prop_assert_eq!(a.status, b.status);
        prop_assert_eq!(a.objective, b.objective);
        prop_assert_eq!(a.nodes, b.nodes);
    }

    /// Presolve never changes the proven optimum.
    #[test]
    fn presolve_is_transparent(bp in arb_binary_program()) {
        let (m, _) = bp.to_model();
        let with = solve_milp(&m, &MilpOptions::default());
        let without = solve_milp(&m, &MilpOptions { presolve: false, ..MilpOptions::default() });
        prop_assert_eq!(with.status, without.status);
        if with.status == MilpStatus::Optimal {
            prop_assert!((with.objective - without.objective).abs() < 1e-6,
                "presolve changed the optimum: {} vs {}", with.objective, without.objective);
        }
    }

    /// Adding a redundant constraint never changes the optimum.
    #[test]
    fn redundant_row_invariance(bp in arb_binary_program()) {
        let (m, vars) = bp.to_model();
        let base = solve_milp(&m, &MilpOptions::default());
        let mut m2 = m.clone();
        // Σ xᵢ ≤ n is implied by binarity.
        m2.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::Le, bp.n as f64);
        let with = solve_milp(&m2, &MilpOptions::default());
        prop_assert!((base.objective - with.objective).abs() < 1e-6);
    }
}

/// Equality-constrained integer program cross-check: exact cover style.
#[test]
fn equality_cover() {
    // Choose exactly 2 of 4 items minimizing cost, with item pair conflicts.
    let mut m = Model::new();
    let costs = [5.0, 3.0, 4.0, 6.0];
    let vars: Vec<VarId> = costs.iter().map(|&c| m.add_binary(c)).collect();
    m.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::Eq, 2.0);
    // items 1 and 2 conflict
    m.add_constraint([(vars[1], 1.0), (vars[2], 1.0)], Relation::Le, 1.0);
    let sol = solve_milp(&m, &MilpOptions::default());
    assert_eq!(sol.status, MilpStatus::Optimal);
    // Best: {1, 0} = 8? options: {0,1}=8, {0,2}=9, {0,3}=11, {1,3}=9, {2,3}=10.
    assert!((sol.objective - 8.0).abs() < 1e-6, "obj {}", sol.objective);
}

/// Timeout produces a limit status, not a wrong answer.
#[test]
fn time_limit_is_honored() {
    use std::time::Duration;
    // A 24-variable knapsack; with a zero time budget we must get a limit
    // status immediately.
    let mut m = Model::new();
    let vars: Vec<VarId> = (0..24)
        .map(|i| m.add_binary(-((i % 7 + 1) as f64)))
        .collect();
    m.add_constraint(
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (v, ((i * 13) % 5 + 1) as f64)),
        Relation::Le,
        20.0,
    );
    let sol = solve_milp(
        &m,
        &MilpOptions {
            time_limit: Some(Duration::ZERO),
            ..MilpOptions::default()
        },
    );
    assert!(matches!(
        sol.status,
        MilpStatus::Limit | MilpStatus::FeasibleLimit
    ));
}

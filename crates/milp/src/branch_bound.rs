//! Branch-and-bound over the LP relaxation.
//!
//! Best-first search: nodes are bound tightenings of integer variables,
//! ordered by their parent relaxation value so the most promising subtree is
//! expanded first. Branching selects the most fractional integer variable.
//! The solver prunes on the incumbent, respects wall-clock and node limits,
//! and reports the final optimality gap so callers can distinguish "proved
//! optimal" from "ran out of budget" — exactly the behaviour the paper's
//! Figure 2/7 runtime experiments need from their Gurobi stand-in.

use crate::model::{Model, VarId};
use crate::simplex::{solve_lp_with_limit, LpStatus};
use socl_net::fcmp;
use socl_net::time::Stopwatch;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Duration;

/// Termination status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Proved optimal.
    Optimal,
    /// Proved infeasible.
    Infeasible,
    /// The LP relaxation is unbounded.
    Unbounded,
    /// Stopped at a limit with an incumbent (objective/gap are valid).
    FeasibleLimit,
    /// Stopped at a limit without any incumbent.
    Limit,
}

/// Options controlling the search.
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Wall-clock budget.
    pub time_limit: Option<Duration>,
    /// Maximum number of branch-and-bound nodes.
    pub node_limit: usize,
    /// Absolute integrality tolerance.
    pub int_tol: f64,
    /// Stop when `incumbent - bound ≤ gap_abs`.
    pub gap_abs: f64,
    /// Pivot cap per LP solve.
    pub lp_iter_limit: usize,
    /// Run [`crate::presolve::presolve`] before the search (default true):
    /// singleton rows become bounds, redundant rows are dropped, and
    /// trivially infeasible models are rejected without touching the simplex.
    pub presolve: bool,
}

impl Default for MilpOptions {
    fn default() -> Self {
        Self {
            time_limit: None,
            node_limit: 2_000_000,
            int_tol: 1e-6,
            gap_abs: 1e-6,
            lp_iter_limit: 200_000,
            presolve: true,
        }
    }
}

/// Result of a MILP solve.
#[derive(Debug, Clone)]
pub struct MilpSolution {
    pub status: MilpStatus,
    /// Incumbent objective (valid for `Optimal` / `FeasibleLimit`).
    pub objective: f64,
    /// Incumbent variable values.
    pub values: Vec<f64>,
    /// Best lower bound proved across the open tree.
    pub bound: f64,
    /// Nodes explored.
    pub nodes: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl MilpSolution {
    /// Relative optimality gap `(incumbent - bound) / max(1, |incumbent|)`.
    pub fn gap(&self) -> f64 {
        if self.values.is_empty() {
            f64::INFINITY
        } else {
            (self.objective - self.bound).max(0.0) / self.objective.abs().max(1.0)
        }
    }
}

/// A search node: a set of tightened bounds on integer variables.
#[derive(Debug, Clone)]
struct Node {
    /// `(var, lower, upper)` overrides relative to the root model.
    bounds: Vec<(VarId, f64, f64)>,
    /// Parent LP relaxation value (priority).
    relax: f64,
}

/// Max-heap by lowest relaxation value first (best-first for minimization).
struct Prioritized(Node);

impl PartialEq for Prioritized {
    fn eq(&self, other: &Self) -> bool {
        fcmp::total(&self.0.relax, &other.0.relax) == Ordering::Equal
    }
}
impl Eq for Prioritized {}
impl Ord for Prioritized {
    fn cmp(&self, other: &Self) -> Ordering {
        // NaN-safe total order (shared helper, rule L1): a NaN relaxation
        // sorts as the *worst* priority instead of silently comparing Equal
        // to everything, which corrupted heap invariants.
        fcmp::total(&other.0.relax, &self.0.relax)
    }
}
impl PartialOrd for Prioritized {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Solve `model` to integer optimality (or until a limit fires).
pub fn solve_milp(model: &Model, options: &MilpOptions) -> MilpSolution {
    let start = Stopwatch::start();
    // Presolve keeps variable indices stable, so the reduced model can be
    // searched directly and its solutions are valid for the original.
    let reduced;
    let model = if options.presolve {
        match crate::presolve::presolve(model) {
            crate::presolve::PresolveResult::Infeasible => {
                return MilpSolution {
                    status: MilpStatus::Infeasible,
                    objective: f64::INFINITY,
                    values: Vec::new(),
                    bound: f64::NEG_INFINITY,
                    nodes: 0,
                    elapsed: start.elapsed(),
                }
            }
            crate::presolve::PresolveResult::Reduced(p) => {
                reduced = p.model;
                &reduced
            }
        }
    } else {
        model
    };
    let int_vars = model.integer_vars();
    let mut nodes = 0usize;

    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut heap: BinaryHeap<Prioritized> = BinaryHeap::new();
    heap.push(Prioritized(Node {
        bounds: Vec::new(),
        relax: f64::NEG_INFINITY,
    }));

    let mut working = model.clone();
    let mut best_open_bound = f64::NEG_INFINITY;
    let mut root_status: Option<LpStatus> = None;

    while let Some(Prioritized(node)) = heap.pop() {
        best_open_bound = node.relax;
        // Incumbent prune (node.relax is a valid lower bound for the subtree).
        if let Some((inc, _)) = &incumbent {
            if node.relax >= *inc - options.gap_abs {
                // Best-first order ⇒ all remaining nodes are ≥ this bound.
                best_open_bound = node.relax;
                break;
            }
        }
        // Limits.
        if nodes >= options.node_limit || options.time_limit.is_some_and(|t| start.exceeded(t)) {
            let status_on_limit = if incumbent.is_some() {
                MilpStatus::FeasibleLimit
            } else {
                MilpStatus::Limit
            };
            return finish(
                model,
                incumbent,
                best_open_bound,
                nodes,
                start,
                status_on_limit,
            );
        }
        nodes += 1;

        // Apply node bounds on a fresh copy of the root bounds.
        for v in &int_vars {
            let (l, u) = model.bounds(*v);
            working.set_bounds(*v, l, u);
        }
        let mut empty_domain = false;
        for &(v, l, u) in &node.bounds {
            if l > u {
                empty_domain = true;
                break;
            }
            working.set_bounds(v, l, u);
        }
        if empty_domain {
            continue;
        }

        let lp = solve_lp_with_limit(&working, options.lp_iter_limit);
        if root_status.is_none() {
            root_status = Some(lp.status);
        }
        match lp.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                // Only meaningful at the root; deeper nodes inherit it.
                if nodes == 1 {
                    return finish(
                        model,
                        None,
                        f64::NEG_INFINITY,
                        nodes,
                        start,
                        MilpStatus::Unbounded,
                    );
                }
                continue;
            }
            LpStatus::IterationLimit => continue,
            LpStatus::Optimal => {}
        }

        // Prune on the fresh relaxation too.
        if let Some((inc, _)) = &incumbent {
            if lp.objective >= *inc - options.gap_abs {
                continue;
            }
        }

        // Find the most fractional integer variable.
        let mut branch: Option<(VarId, f64)> = None;
        let mut best_frac = options.int_tol;
        for &v in &int_vars {
            let x = lp.values[v.0];
            let frac = (x - x.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch = Some((v, x));
            }
        }

        match branch {
            None => {
                // Integral: candidate incumbent (round off tolerance noise).
                let mut vals = lp.values.clone();
                for &v in &int_vars {
                    vals[v.0] = vals[v.0].round();
                }
                let obj = model.objective_value(&vals);
                if model.is_feasible(&vals, 1e-6)
                    && incumbent.as_ref().is_none_or(|(inc, _)| obj < *inc)
                {
                    incumbent = Some((obj, vals));
                }
            }
            Some((v, x)) => {
                let floor = x.floor();
                let (root_l, root_u) = {
                    // Effective bounds at this node.
                    let mut l = model.bounds(v).0;
                    let mut u = model.bounds(v).1;
                    for &(bv, bl, bu) in &node.bounds {
                        if bv == v {
                            l = bl;
                            u = bu;
                        }
                    }
                    (l, u)
                };
                // Down child: v ≤ floor(x).
                if floor >= root_l {
                    let mut b = node.bounds.clone();
                    b.retain(|&(bv, _, _)| bv != v);
                    b.push((v, root_l, floor));
                    heap.push(Prioritized(Node {
                        bounds: b,
                        relax: lp.objective,
                    }));
                }
                // Up child: v ≥ ceil(x).
                if floor + 1.0 <= root_u {
                    let mut b = node.bounds.clone();
                    b.retain(|&(bv, _, _)| bv != v);
                    b.push((v, floor + 1.0, root_u));
                    heap.push(Prioritized(Node {
                        bounds: b,
                        relax: lp.objective,
                    }));
                }
            }
        }
    }

    // Tree exhausted (or bound-closed).
    let status = match (&incumbent, root_status) {
        (Some(_), _) => MilpStatus::Optimal,
        (None, Some(LpStatus::Unbounded)) => MilpStatus::Unbounded,
        (None, _) => MilpStatus::Infeasible,
    };
    let bound = match &incumbent {
        Some((inc, _)) => *inc, // closed: bound meets incumbent
        None => best_open_bound,
    };
    finish(model, incumbent, bound, nodes, start, status)
}

fn finish(
    _model: &Model,
    incumbent: Option<(f64, Vec<f64>)>,
    bound: f64,
    nodes: usize,
    start: Stopwatch,
    status: MilpStatus,
) -> MilpSolution {
    let (objective, values) = incumbent.unwrap_or((f64::INFINITY, Vec::new()));
    MilpSolution {
        status,
        objective,
        values,
        bound,
        nodes,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Relation, VarKind};

    fn opts() -> MilpOptions {
        MilpOptions::default()
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c ≤ 6, binary → a+c (17) vs b+c (20).
        let mut m = Model::new();
        let a = m.add_binary(-10.0);
        let b = m.add_binary(-13.0);
        let c = m.add_binary(-7.0);
        m.add_constraint([(a, 3.0), (b, 4.0), (c, 2.0)], Relation::Le, 6.0);
        let s = solve_milp(&m, &opts());
        assert_eq!(s.status, MilpStatus::Optimal);
        assert!((s.objective - -20.0).abs() < 1e-6, "obj {}", s.objective);
        assert_eq!(s.values[a.0].round() as i32, 0);
        assert_eq!(s.values[b.0].round() as i32, 1);
        assert_eq!(s.values[c.0].round() as i32, 1);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y ≤ 3, integers → LP gives 1.5, ILP gives 1.
        let mut m = Model::new();
        let x = m.add_var(0.0, 10.0, -1.0, VarKind::Integer);
        let y = m.add_var(0.0, 10.0, -1.0, VarKind::Integer);
        m.add_constraint([(x, 2.0), (y, 2.0)], Relation::Le, 3.0);
        let s = solve_milp(&m, &opts());
        assert_eq!(s.status, MilpStatus::Optimal);
        assert!((s.objective - -1.0).abs() < 1e-6);
    }

    #[test]
    fn assignment_problem_exact() {
        // 3×3 assignment, cost matrix with known optimum 5 (1+3+1... choose
        // perm minimizing): C = [[4,1,3],[2,0,5],[3,2,2]] → 1 + 2 + 2 = 5.
        let c = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new();
        let mut vars = [[VarId(0); 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                vars[i][j] = m.add_binary(c[i][j]);
            }
        }
        for (i, row) in vars.iter().enumerate() {
            m.add_constraint(row.iter().map(|&v| (v, 1.0)), Relation::Eq, 1.0);
            m.add_constraint((0..3).map(|j| (vars[j][i], 1.0)), Relation::Eq, 1.0);
        }
        let s = solve_milp(&m, &opts());
        assert_eq!(s.status, MilpStatus::Optimal);
        assert!((s.objective - 5.0).abs() < 1e-6, "obj {}", s.objective);
    }

    #[test]
    fn infeasible_milp() {
        let mut m = Model::new();
        let x = m.add_binary(1.0);
        let y = m.add_binary(1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 3.0);
        let s = solve_milp(&m, &opts());
        assert_eq!(s.status, MilpStatus::Infeasible);
    }

    #[test]
    fn pure_lp_passes_through() {
        let mut m = Model::new();
        let x = m.add_continuous(4.0, -1.0);
        m.add_constraint([(x, 1.0)], Relation::Le, 2.5);
        let s = solve_milp(&m, &opts());
        assert_eq!(s.status, MilpStatus::Optimal);
        assert!((s.objective - -2.5).abs() < 1e-6);
        assert_eq!(s.nodes, 1);
    }

    #[test]
    fn node_limit_reports_limit_status() {
        // A knapsack big enough to need > 1 node.
        let mut m = Model::new();
        let vars: Vec<_> = (0..12)
            .map(|i| m.add_binary(-((i % 5 + 1) as f64)))
            .collect();
        m.add_constraint(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, (i % 3 + 1) as f64)),
            Relation::Le,
            7.0,
        );
        let s = solve_milp(
            &m,
            &MilpOptions {
                node_limit: 1,
                ..opts()
            },
        );
        assert!(matches!(
            s.status,
            MilpStatus::Limit | MilpStatus::FeasibleLimit | MilpStatus::Optimal
        ));
    }

    #[test]
    fn gap_is_zero_when_proved_optimal() {
        let mut m = Model::new();
        let x = m.add_binary(-1.0);
        let y = m.add_binary(-1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        let s = solve_milp(&m, &opts());
        assert_eq!(s.status, MilpStatus::Optimal);
        assert!(s.gap() < 1e-6);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min -y s.t. y ≤ x + 0.5, x binary, y ∈ [0, 2] → x=1, y=1.5.
        let mut m = Model::new();
        let x = m.add_binary(0.0);
        let y = m.add_var(0.0, 2.0, -1.0, VarKind::Continuous);
        m.add_constraint([(y, 1.0), (x, -1.0)], Relation::Le, 0.5);
        let s = solve_milp(&m, &opts());
        assert_eq!(s.status, MilpStatus::Optimal);
        assert!((s.objective - -1.5).abs() < 1e-6);
        assert_eq!(s.values[x.0].round() as i32, 1);
    }

    #[test]
    fn solution_is_integral_and_feasible() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_binary(-(1.0 + i as f64 * 0.3)))
            .collect();
        m.add_constraint(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i * i % 4) as f64)),
            Relation::Le,
            6.0,
        );
        m.add_constraint([(vars[0], 1.0), (vars[1], 1.0)], Relation::Le, 1.0);
        let s = solve_milp(&m, &opts());
        assert_eq!(s.status, MilpStatus::Optimal);
        assert!(m.is_feasible(&s.values, 1e-6));
        for &v in &s.values {
            assert!((v - v.round()).abs() < 1e-6);
        }
    }
}

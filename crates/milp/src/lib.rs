//! # socl-milp — a from-scratch LP/MILP solver
//!
//! The SoCL paper solves its ILP reformulation (Definition 4) with Gurobi.
//! Mature MILP solvers are not available as pure-Rust crates, so this crate
//! implements the required machinery from scratch:
//!
//! * a model-builder API ([`model::Model`]) with bounded continuous, integer
//!   and binary variables and `≤ / = / ≥` linear constraints,
//! * a dense two-phase primal simplex ([`simplex`]) for the LP relaxation,
//! * a best-first branch-and-bound MILP solver ([`branch_bound`]) with
//!   most-fractional branching, incumbent pruning, and node/time limits.
//!
//! The solver is exact on the instances the test-suite and the paper's
//! small-scale experiments use; it intentionally favours clarity and
//! robustness over large-scale performance (the paper's point is precisely
//! that exact solving does not scale — our Figure 2/7 harnesses rely on that
//! behaviour being reproduced, not avoided).

pub mod branch_bound;
pub mod model;
pub mod presolve;
pub mod simplex;

pub use branch_bound::{solve_milp, MilpOptions, MilpSolution, MilpStatus};
pub use model::{Constraint, Model, Relation, VarId, VarKind};
pub use presolve::{presolve, PresolveResult, Presolved};
pub use simplex::{solve_lp, LpSolution, LpStatus};

#[cfg(test)]
mod proptests;

//! Shared result type and evaluation helpers for the baselines.

use socl_model::{completion_time, Placement, Scenario};
use socl_net::NodeId;
use std::time::Duration;

/// Outcome of one baseline run.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Human-readable algorithm tag ("RP", "JDR", "GC-OG").
    pub name: &'static str,
    /// The deployment decision.
    pub placement: Placement,
    /// Weighted objective `Q` under the algorithm's own routing.
    pub objective: f64,
    /// Deployment cost `Σ𝒦_k`.
    pub cost: f64,
    /// Total completion time `Σ𝒟_h` (seconds), fallbacks at the penalty.
    pub total_latency: f64,
    /// Requests that fell back to the cloud.
    pub cloud_fallbacks: usize,
    /// Wall-clock solve time.
    pub elapsed: Duration,
}

/// Evaluate `placement` with an arbitrary per-request routing policy.
///
/// `route_fn(h)` returns the node sequence for request `h`, or `None` for a
/// cloud fallback. Returns `(objective, cost, total_latency, fallbacks)`.
pub fn evaluate_with_routes<F>(
    sc: &Scenario,
    placement: &Placement,
    mut route_fn: F,
) -> (f64, f64, f64, usize)
where
    F: FnMut(usize) -> Option<Vec<NodeId>>,
{
    let mut total_latency = 0.0;
    let mut fallbacks = 0;
    for (h, req) in sc.requests.iter().enumerate() {
        match route_fn(h) {
            Some(route) => {
                let b = completion_time(req, &route, &sc.net, &sc.ap, &sc.catalog);
                total_latency += b.total();
            }
            None => {
                total_latency += sc.cloud_penalty;
                fallbacks += 1;
            }
        }
    }
    let cost = placement.deployment_cost(&sc.catalog);
    let objective = sc.lambda * cost + (1.0 - sc.lambda) * sc.latency_scale * total_latency;
    (objective, cost, total_latency, fallbacks)
}

/// Ensure each requested service has ≥ 1 instance: deploy any missing
/// service on the storage-feasible node with the highest local demand
/// (falling back to the emptiest node). Used by all baselines so that none
/// of them silently loses to SoCL by stranding requests in the cloud.
pub fn ensure_coverage(sc: &Scenario, placement: &mut Placement) {
    for m in sc.requested_services() {
        if placement.instance_count(m) > 0 {
            continue;
        }
        let phi = sc.catalog.storage(m);
        let candidate = sc
            .net
            .node_ids()
            .filter(|&k| sc.net.storage(k) - placement.storage_used(&sc.catalog, k) >= phi - 1e-9)
            .max_by_key(|&k| sc.demand(m, k));
        if let Some(k) = candidate {
            placement.set(m, k, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_model::{evaluate, route_all, ScenarioConfig};

    #[test]
    fn evaluate_with_optimal_routes_matches_model_evaluate() {
        let sc = ScenarioConfig::paper(8, 20).build(3);
        let placement = Placement::full(sc.services(), sc.nodes());
        let asg = route_all(&sc.requests, &placement, &sc.net, &sc.ap, &sc.catalog);
        let (obj, cost, lat, fb) =
            evaluate_with_routes(&sc, &placement, |h| asg.route(h).map(|r| r.to_vec()));
        let ev = evaluate(&sc, &placement);
        assert!((obj - ev.objective).abs() < 1e-9);
        assert!((cost - ev.cost).abs() < 1e-9);
        assert!((lat - ev.total_latency).abs() < 1e-9);
        assert_eq!(fb, ev.cloud_fallbacks);
    }

    #[test]
    fn ensure_coverage_fills_gaps() {
        let sc = ScenarioConfig::paper(8, 30).build(4);
        let mut placement = Placement::empty(sc.services(), sc.nodes());
        ensure_coverage(&sc, &mut placement);
        for m in sc.requested_services() {
            assert!(placement.instance_count(m) >= 1, "{m} uncovered");
        }
        assert!(placement.storage_feasible(&sc.catalog, &sc.net));
    }

    #[test]
    fn ensure_coverage_is_idempotent() {
        let sc = ScenarioConfig::paper(8, 30).build(5);
        let mut a = Placement::empty(sc.services(), sc.nodes());
        ensure_coverage(&sc, &mut a);
        let mut b = a.clone();
        ensure_coverage(&sc, &mut b);
        assert_eq!(a, b);
    }
}

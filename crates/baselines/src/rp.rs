//! RP — Random Provisioning.
//!
//! Unstructured baseline: deploy random instances until a random fraction of
//! the budget is consumed (subject to per-node storage), then route every
//! chain position to a uniformly random instance of the service. Seeded for
//! reproducibility.

use crate::common::{ensure_coverage, evaluate_with_routes, BaselineResult};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use socl_model::{Placement, Scenario, ServiceId};
use socl_net::time::Stopwatch;
use socl_net::NodeId;

/// Run RP on `scenario` with the given RNG seed.
pub fn random_provisioning(sc: &Scenario, seed: u64) -> BaselineResult {
    let start = Stopwatch::start();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut placement = Placement::empty(sc.services(), sc.nodes());
    let requested = sc.requested_services();

    // Guarantee coverage first (random node per service).
    for &m in &requested {
        let phi = sc.catalog.storage(m);
        let feasible: Vec<NodeId> = sc
            .net
            .node_ids()
            .filter(|&k| sc.net.storage(k) - placement.storage_used(&sc.catalog, k) >= phi - 1e-9)
            .collect();
        if let Some(&k) = feasible.as_slice().choose(&mut rng) {
            placement.set(m, k, true);
        }
    }
    ensure_coverage(sc, &mut placement);

    // Spend a random share of the remaining budget on random instances.
    let target = placement.deployment_cost(&sc.catalog)
        + rng.gen_range(0.3..0.9) * (sc.budget - placement.deployment_cost(&sc.catalog)).max(0.0);
    let mut attempts = 0;
    while placement.deployment_cost(&sc.catalog) < target
        && attempts < 10 * sc.nodes() * requested.len()
    {
        attempts += 1;
        let Some(&m) = requested.as_slice().choose(&mut rng) else {
            break; // no requested services: nothing to provision
        };
        let k = NodeId(rng.gen_range(0..sc.nodes() as u32));
        if placement.get(m, k) {
            continue;
        }
        let phi = sc.catalog.storage(m);
        if sc.net.storage(k) - placement.storage_used(&sc.catalog, k) < phi - 1e-9 {
            continue;
        }
        if placement.deployment_cost(&sc.catalog) + sc.catalog.deploy_cost(m) > sc.budget {
            continue;
        }
        placement.set(m, k, true);
    }

    // Random routing: uniform host per chain position.
    let routes: Vec<Option<Vec<NodeId>>> = sc
        .requests
        .iter()
        .map(|req| {
            req.chain
                .iter()
                .map(|&m: &ServiceId| {
                    let hosts = placement.hosts_of(m);
                    hosts.as_slice().choose(&mut rng).copied()
                })
                .collect::<Option<Vec<NodeId>>>()
        })
        .collect();

    let (objective, cost, total_latency, cloud_fallbacks) =
        evaluate_with_routes(sc, &placement, |h| routes[h].clone());
    BaselineResult {
        name: "RP",
        placement,
        objective,
        cost,
        total_latency,
        cloud_fallbacks,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_model::ScenarioConfig;

    #[test]
    fn rp_is_feasible_and_covers() {
        let sc = ScenarioConfig::paper(10, 40).build(1);
        let res = random_provisioning(&sc, 42);
        assert!(res.cost <= sc.budget + 1e-6);
        assert!(res.placement.storage_feasible(&sc.catalog, &sc.net));
        assert_eq!(res.cloud_fallbacks, 0);
        assert!(res.objective > 0.0);
    }

    #[test]
    fn rp_is_seed_deterministic() {
        let sc = ScenarioConfig::paper(10, 40).build(2);
        let a = random_provisioning(&sc, 7);
        let b = random_provisioning(&sc, 7);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.objective, b.objective);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let sc = ScenarioConfig::paper(10, 40).build(3);
        let a = random_provisioning(&sc, 1);
        let b = random_provisioning(&sc, 2);
        assert!(a.placement != b.placement || (a.objective - b.objective).abs() > 0.0);
    }

    #[test]
    fn random_routing_is_no_better_than_optimal() {
        let sc = ScenarioConfig::paper(10, 40).build(4);
        let res = random_provisioning(&sc, 5);
        let ev = socl_model::evaluate(&sc, &res.placement);
        assert!(res.total_latency >= ev.total_latency - 1e-9);
    }
}

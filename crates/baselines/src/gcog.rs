//! GC-OG — Greedy Combine with Objective Gradient.
//!
//! Starts from the demand-saturated placement (an instance of every service
//! on every node where it has demand, storage permitting) and repeatedly
//! removes the single instance whose removal most improves the full
//! objective, re-evaluating *every* candidate with exact routing each round.
//! While the budget is violated, the least-bad removal is forced even if the
//! objective worsens. The search stops when no removal improves the
//! objective and the budget holds.
//!
//! Quality is good; cost is the full `O(instances² · eval)` sweep the paper
//! calls out ("its low search efficiency became a limiting factor … with
//! 120 users GC-OG required 2,274.8 seconds").

use crate::common::{ensure_coverage, BaselineResult};
use socl_model::{evaluate, Placement, Scenario};
use socl_net::time::Stopwatch;

/// Run GC-OG on `scenario`.
pub fn gc_og(sc: &Scenario) -> BaselineResult {
    let start = Stopwatch::start();
    let mut placement = Placement::empty(sc.services(), sc.nodes());

    // Coverage first (one instance per requested service), so storage
    // saturation below can never strand a service with zero instances.
    ensure_coverage(sc, &mut placement);
    // Demand-saturated start: every service everywhere it has local demand.
    for m in sc.requested_services() {
        for k in sc.request_nodes(m) {
            let phi = sc.catalog.storage(m);
            if !placement.get(m, k)
                && sc.net.storage(k) - placement.storage_used(&sc.catalog, k) >= phi - 1e-9
            {
                placement.set(m, k, true);
            }
        }
    }

    loop {
        let current = evaluate(sc, &placement);
        let over_budget = current.cost > sc.budget + 1e-9;

        // Evaluate removing each instance (keeping coverage).
        let mut best: Option<(f64, socl_model::ServiceId, socl_net::NodeId)> = None;
        for (m, k) in placement.iter_deployed() {
            if placement.instance_count(m) <= 1 {
                continue;
            }
            let mut trial = placement.clone();
            trial.set(m, k, false);
            let ev = evaluate(sc, &trial);
            if best.as_ref().is_none_or(|&(b, _, _)| ev.objective < b) {
                best = Some((ev.objective, m, k));
            }
        }

        match best {
            Some((obj, m, k)) if over_budget || obj < current.objective - 1e-9 => {
                placement.set(m, k, false);
            }
            _ => break,
        }
    }

    let ev = evaluate(sc, &placement);
    BaselineResult {
        name: "GC-OG",
        placement,
        objective: ev.objective,
        cost: ev.cost,
        total_latency: ev.total_latency,
        cloud_fallbacks: ev.cloud_fallbacks,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_model::ScenarioConfig;

    #[test]
    fn gcog_is_feasible_and_within_budget() {
        let sc = ScenarioConfig::paper(8, 30).build(1);
        let res = gc_og(&sc);
        assert!(res.cost <= sc.budget + 1e-6, "cost {}", res.cost);
        assert_eq!(res.cloud_fallbacks, 0);
        assert!(res.placement.storage_feasible(&sc.catalog, &sc.net));
    }

    #[test]
    fn gcog_reaches_a_local_minimum() {
        let sc = ScenarioConfig::paper(8, 30).build(2);
        let res = gc_og(&sc);
        // No single removal can improve further.
        let current = evaluate(&sc, &res.placement);
        for (m, k) in res.placement.iter_deployed() {
            if res.placement.instance_count(m) <= 1 {
                continue;
            }
            let mut trial = res.placement.clone();
            trial.set(m, k, false);
            let ev = evaluate(&sc, &trial);
            assert!(
                ev.objective >= current.objective - 1e-9,
                "removal of {m}@{k} improves: {} < {}",
                ev.objective,
                current.objective
            );
        }
    }

    #[test]
    fn gcog_improves_on_its_starting_point() {
        let sc = ScenarioConfig::paper(8, 40).build(3);
        // Rebuild the start.
        let mut start_p = Placement::empty(sc.services(), sc.nodes());
        ensure_coverage(&sc, &mut start_p);
        for m in sc.requested_services() {
            for k in sc.request_nodes(m) {
                let phi = sc.catalog.storage(m);
                if !start_p.get(m, k)
                    && sc.net.storage(k) - start_p.storage_used(&sc.catalog, k) >= phi - 1e-9
                {
                    start_p.set(m, k, true);
                }
            }
        }
        let before = evaluate(&sc, &start_p).objective;
        let res = gc_og(&sc);
        assert!(res.objective <= before + 1e-9);
    }

    #[test]
    fn gcog_is_deterministic() {
        let sc = ScenarioConfig::paper(8, 25).build(4);
        let a = gc_og(&sc);
        let b = gc_og(&sc);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.objective, b.objective);
    }
}

//! # socl-baselines — the paper's comparison algorithms
//!
//! Section V.A compares SoCL against three baselines; all three are
//! implemented here from the paper's descriptions:
//!
//! * **RP — Random Provisioning** ([`rp`]): seeded random placement and
//!   random routing. The paper: "random placement and routing strategy,
//!   which led to highly unbalanced resource allocation".
//! * **JDR — Joint Deployment and Routing** ([`jdr`], after ref. [11]):
//!   classifies microservices into single-user and multi-user groups,
//!   deploys single-user services next to their user and multi-user
//!   services on high-capacity servers, spending the budget freely
//!   ("by neglecting provisioning costs, JDR caused resource redundancy").
//! * **GC-OG — Greedy Combine with Objective Gradient** ([`gcog`]): starts
//!   from a demand-saturated placement and greedily removes the instance
//!   whose removal best improves the full objective, re-evaluating every
//!   candidate each round — good quality, exponential-ish search cost,
//!   exactly the trade-off the paper reports.
//!
//! Every baseline returns a [`BaselineResult`] with its own routing policy
//! applied (RP routes randomly, JDR and GC-OG route optimally), because the
//! paper evaluates each algorithm end-to-end, routing included.

pub mod common;
pub mod gcog;
pub mod jdr;
pub mod rp;

pub use common::BaselineResult;
pub use gcog::gc_og;
pub use jdr::jdr;
pub use rp::random_provisioning;

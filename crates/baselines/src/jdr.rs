//! JDR — Joint Deployment and Routing (after Peng et al. [11], as described
//! in the paper's evaluation section).
//!
//! Microservices are split into a *single-user* group (requested by exactly
//! one user) and a *multi-user* group. Single-user services deploy as close
//! to their user's node as storage allows; multi-user services deploy onto
//! high-capacity servers, replicating across the capacity ranking while the
//! budget lasts ("JDR attempted to optimize latency … by neglecting
//! provisioning costs, JDR caused resource redundancy"). Routing is optimal
//! per request (the algorithm's focus is latency).

use crate::common::{ensure_coverage, BaselineResult};
use socl_model::{evaluate, Placement, Scenario, ServiceId};
use socl_net::NodeId;

use socl_net::time::Stopwatch;

/// Nodes ordered by descending compute capacity (ties to smaller id).
fn capacity_ranking(sc: &Scenario) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = sc.net.node_ids().collect();
    nodes.sort_by(|&a, &b| {
        sc.net
            .compute_gflops(b)
            .total_cmp(&sc.net.compute_gflops(a))
            .then(a.cmp(&b))
    });
    nodes
}

/// True if `m` fits on `k` under the current placement.
fn fits(sc: &Scenario, placement: &Placement, m: ServiceId, k: NodeId) -> bool {
    !placement.get(m, k)
        && sc.net.storage(k) - placement.storage_used(&sc.catalog, k)
            >= sc.catalog.storage(m) - 1e-9
}

/// Run JDR on `scenario`.
pub fn jdr(sc: &Scenario) -> BaselineResult {
    let start = Stopwatch::start();
    let mut placement = Placement::empty(sc.services(), sc.nodes());

    // Classify.
    let requested = sc.requested_services();
    let (single, multi): (Vec<ServiceId>, Vec<ServiceId>) = requested
        .iter()
        .copied()
        .partition(|&m| sc.total_demand(m) == 1);

    // Single-user services: on (or as near as possible to) the user's node.
    for &m in &single {
        // A single-user service has, by the partition above, exactly one
        // requesting user; skip defensively if the invariant ever breaks.
        let Some(user) = sc.requests.iter().find(|r| r.uses(m)) else {
            continue;
        };
        // Nearest by channel speed from the user's location.
        let mut candidates: Vec<NodeId> = sc.net.node_ids().collect();
        candidates.sort_by(|&a, &b| {
            sc.ap
                .best_speed(user.location, b)
                .total_cmp(&sc.ap.best_speed(user.location, a))
                .then(a.cmp(&b))
        });
        if let Some(&k) = candidates.iter().find(|&&k| fits(sc, &placement, m, k)) {
            placement.set(m, k, true);
        }
    }

    // Multi-user services: replicate across high-capacity servers while the
    // budget allows, round-robin over the capacity ranking.
    let ranking = capacity_ranking(sc);
    // First pass: one instance each on the top-capacity feasible node.
    for &m in &multi {
        if let Some(&k) = ranking.iter().find(|&&k| fits(sc, &placement, m, k)) {
            placement.set(m, k, true);
        }
    }
    // Redundancy passes: keep adding replicas (budget-blind latency focus,
    // stopped only by the hard budget constraint and storage).
    let mut progress = true;
    while progress {
        progress = false;
        for &m in &multi {
            let kappa = sc.catalog.deploy_cost(m);
            if placement.deployment_cost(&sc.catalog) + kappa > sc.budget {
                continue;
            }
            // Prefer capacity ranking order for the next replica.
            if let Some(&k) = ranking.iter().find(|&&k| fits(sc, &placement, m, k)) {
                // Only replicate where the service actually has demand reach:
                // cap replicas at the number of demand-hosting nodes.
                if placement.instance_count(m) < sc.request_nodes(m).len() {
                    placement.set(m, k, true);
                    progress = true;
                }
            }
        }
    }
    ensure_coverage(sc, &mut placement);

    let ev = evaluate(sc, &placement);
    BaselineResult {
        name: "JDR",
        placement,
        objective: ev.objective,
        cost: ev.cost,
        total_latency: ev.total_latency,
        cloud_fallbacks: ev.cloud_fallbacks,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_model::ScenarioConfig;

    #[test]
    fn jdr_is_feasible() {
        let sc = ScenarioConfig::paper(10, 40).build(1);
        let res = jdr(&sc);
        assert!(res.cost <= sc.budget + 1e-6);
        assert!(res.placement.storage_feasible(&sc.catalog, &sc.net));
        assert_eq!(res.cloud_fallbacks, 0);
    }

    #[test]
    fn jdr_spends_generously() {
        // The redundancy passes should push cost well above the one-instance
        // minimum (the paper's critique of JDR).
        let sc = ScenarioConfig::paper(10, 60).build(2);
        let res = jdr(&sc);
        let min_cost: f64 = sc
            .requested_services()
            .iter()
            .map(|&m| sc.catalog.deploy_cost(m))
            .sum();
        assert!(
            res.cost > min_cost,
            "JDR cost {} should exceed minimal {min_cost}",
            res.cost
        );
    }

    #[test]
    fn multi_user_services_prefer_high_capacity_nodes() {
        let sc = ScenarioConfig::paper(10, 50).build(3);
        let res = jdr(&sc);
        let ranking = capacity_ranking(&sc);
        let top = ranking[0];
        // The highest-capacity node should host at least one multi-user
        // service (it is everyone's first choice).
        let multi_there = res
            .placement
            .services_on(top)
            .iter()
            .any(|&m| sc.total_demand(m) > 1);
        assert!(
            multi_there || res.placement.services_on(top).is_empty(),
            "top node unused by multi-user services despite capacity priority"
        );
    }

    #[test]
    fn jdr_is_deterministic() {
        let sc = ScenarioConfig::paper(10, 40).build(4);
        let a = jdr(&sc);
        let b = jdr(&sc);
        assert_eq!(a.placement, b.placement);
    }
}

//! The assembled SoCL pipeline (Figure 5): partition → pre-provision →
//! multi-scale combination, with per-stage wall-clock timings.

use crate::combine::{CombineStats, Combiner};
use crate::config::SoclConfig;
use crate::partition::{initial_partition_cached, ServicePartitions};
use crate::preprovision::{preprovision, PreProvisioning};
use socl_model::{evaluate, Evaluation, Placement, Scenario};
use socl_net::time::Stopwatch;
use socl_net::VgCache;
use std::time::Duration;

/// Wall-clock time spent in each stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    pub partition: Duration,
    pub preprovision: Duration,
    pub combine: Duration,
}

impl StageTimings {
    /// End-to-end solve time.
    pub fn total(&self) -> Duration {
        self.partition + self.preprovision + self.combine
    }
}

/// Everything SoCL produces for one scenario.
#[derive(Debug, Clone)]
pub struct SoclResult {
    /// The final deployment decision `x`.
    pub placement: Placement,
    /// Full evaluation (optimal routing, cost, latency, objective).
    pub evaluation: Evaluation,
    /// Stage-1 output (kept for inspection/ablation).
    pub partitions: ServicePartitions,
    /// Stage-2 output.
    pub preprovisioning: PreProvisioning,
    /// Stage-3 statistics.
    pub combine_stats: CombineStats,
    /// Per-stage timings.
    pub timings: StageTimings,
}

impl SoclResult {
    /// The weighted objective `Q` (Eq. 8).
    pub fn objective(&self) -> f64 {
        self.evaluation.objective
    }
}

/// The SoCL solver: a configuration plus `solve`.
///
/// ```
/// use socl_core::{SoclConfig, SoclSolver};
/// use socl_model::ScenarioConfig;
///
/// let scenario = ScenarioConfig::paper(8, 20).build(7);
/// let result = SoclSolver::new().solve(&scenario);
/// assert_eq!(result.evaluation.cloud_fallbacks, 0);
/// assert!(result.evaluation.cost <= scenario.budget);
///
/// // Hyper-parameters are plain fields:
/// let aggressive = SoclSolver::with_config(SoclConfig { omega: 0.5, ..SoclConfig::default() });
/// assert!(aggressive.solve(&scenario).objective() > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SoclSolver {
    pub config: SoclConfig,
}

impl SoclSolver {
    /// Solver with the paper's default hyper-parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solver with a custom configuration.
    pub fn with_config(config: SoclConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// Run the three stages on `scenario`.
    pub fn solve(&self, scenario: &Scenario) -> SoclResult {
        self.solve_with_vg_cache(scenario, &mut VgCache::new())
    }

    /// Like [`solve`](Self::solve), but stage 1 resolves virtual graphs
    /// through a caller-owned memo. Callers that solve a sequence of related
    /// scenarios (the online layers) keep one [`VgCache`] alive so slots with
    /// unchanged topology and hosting sets skip the `G′(m_i)` rebuilds.
    pub fn solve_with_vg_cache(&self, scenario: &Scenario, vg_cache: &mut VgCache) -> SoclResult {
        let mut timings = StageTimings::default();

        let t = Stopwatch::start();
        let partitions = initial_partition_cached(scenario, &self.config, vg_cache);
        timings.partition = t.elapsed();

        let t = Stopwatch::start();
        let preprovisioning = preprovision(scenario, &partitions, &self.config);
        timings.preprovision = t.elapsed();

        let t = Stopwatch::start();
        let (placement, combine_stats) = Combiner::new(
            scenario,
            &self.config,
            &partitions,
            preprovisioning.placement.clone(),
        )
        .run();
        timings.combine = t.elapsed();

        let evaluation = evaluate(scenario, &placement);
        SoclResult {
            placement,
            evaluation,
            partitions,
            preprovisioning,
            combine_stats,
            timings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_model::ScenarioConfig;
    use std::time::Instant;

    #[test]
    fn pipeline_produces_feasible_solutions() {
        for seed in 0..4 {
            let sc = ScenarioConfig::paper(10, 40).build(seed);
            let res = SoclSolver::new().solve(&sc);
            assert_eq!(res.evaluation.cloud_fallbacks, 0, "seed {seed}");
            assert!(res.placement.storage_feasible(&sc.catalog, &sc.net));
            assert!(
                res.evaluation.cost <= sc.budget + 1e-6,
                "seed {seed}: cost {} > budget {}",
                res.evaluation.cost,
                sc.budget
            );
            assert!(res.objective() > 0.0);
        }
    }

    #[test]
    fn pipeline_is_deterministic() {
        let sc = ScenarioConfig::paper(10, 50).build(7);
        let a = SoclSolver::new().solve(&sc);
        let b = SoclSolver::new().solve(&sc);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.objective(), b.objective());
    }

    #[test]
    fn timings_are_recorded() {
        let sc = ScenarioConfig::paper(10, 40).build(1);
        let res = SoclSolver::new().solve(&sc);
        assert!(res.timings.total() > Duration::ZERO);
        assert_eq!(
            res.timings.total(),
            res.timings.partition + res.timings.preprovision + res.timings.combine
        );
    }

    #[test]
    fn scales_to_larger_instances_quickly() {
        // 200 users / 10 nodes — the paper's largest Figure 8 scale — must
        // complete in interactive time (the whole point of SoCL).
        let sc = ScenarioConfig::paper(10, 200).build(2);
        let t = Instant::now();
        let res = SoclSolver::new().solve(&sc);
        assert!(res.evaluation.cloud_fallbacks == 0);
        assert!(
            t.elapsed() < Duration::from_secs(30),
            "SoCL took {:?} on 200 users",
            t.elapsed()
        );
    }
}

//! Property-based tests for the SoCL pipeline.

use crate::config::SoclConfig;
use crate::pipeline::SoclSolver;
use proptest::prelude::*;
use socl_model::{evaluate, Scenario, ScenarioConfig};

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (5usize..=14, 10usize..=45, any::<u64>())
        .prop_map(|(nodes, users, seed)| ScenarioConfig::paper(nodes, users).build(seed))
}

fn arb_config() -> impl Strategy<Value = SoclConfig> {
    (0.05f64..=1.0, 0.1f64..=20.0, 0.0f64..=5.0, any::<bool>()).prop_map(
        |(omega, xi, theta, candidate_filter)| SoclConfig {
            omega,
            xi,
            theta,
            candidate_filter,
            parallel: false,
            ..SoclConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SoCL always returns a solution that (a) serves every request from the
    /// edge, (b) satisfies per-node storage, and (c) meets the budget
    /// whenever a single instance of each requested service fits in it.
    #[test]
    fn socl_solutions_are_feasible(sc in arb_scenario(), cfg in arb_config()) {
        let res = SoclSolver::with_config(cfg).solve(&sc);
        // Storage feasibility is unconditional (enforce_storage).
        prop_assert!(res.placement.storage_feasible(&sc.catalog, &sc.net));
        // Full edge service is guaranteed whenever the aggregate storage
        // comfortably fits one instance of each requested service; in
        // over-packed micro-topologies a cloud fallback is the correct
        // semantics, so the assertion is conditional.
        let min_storage: f64 = sc.requested_services().iter()
            .map(|&m| sc.catalog.storage(m)).sum();
        if sc.net.total_storage() >= 2.0 * min_storage {
            prop_assert_eq!(res.evaluation.cloud_fallbacks, 0);
        }
        let min_cost: f64 = sc.requested_services().iter()
            .map(|&m| sc.catalog.deploy_cost(m)).sum();
        if min_cost <= sc.budget {
            prop_assert!(res.evaluation.cost <= sc.budget + 1e-6,
                "cost {} > budget {}", res.evaluation.cost, sc.budget);
        }
        // Instance counts stay within demand-node counts + partition slack
        // (the stage-2 bound) — combination only ever removes instances.
        for m in sc.requested_services() {
            let hosts = res.placement.instance_count(m);
            let parts = res.partitions.partitions_of(m).map_or(1, |p| p.len());
            prop_assert!(hosts <= sc.request_nodes(m).len().max(1) + parts + sc.nodes());
        }
    }

    /// The evaluation inside the result matches a fresh evaluation of the
    /// returned placement (no stale state).
    #[test]
    fn result_evaluation_is_fresh(sc in arb_scenario()) {
        let res = SoclSolver::new().solve(&sc);
        let fresh = evaluate(&sc, &res.placement);
        prop_assert!((res.objective() - fresh.objective).abs() < 1e-9);
    }

    /// SoCL dominates the trivial single-hub placement (everything on the
    /// globally busiest node) — a sanity floor for solution quality.
    #[test]
    fn socl_beats_single_hub(sc in arb_scenario()) {
        let res = SoclSolver::new().solve(&sc);
        // Single hub: all requested services on the node with most users.
        let hub = sc.net.node_ids()
            .max_by_key(|&k| sc.users_at(k).count())
            .unwrap();
        let mut hub_placement = socl_model::Placement::empty(sc.services(), sc.nodes());
        for m in sc.requested_services() {
            hub_placement.set(m, hub, true);
        }
        if hub_placement.storage_feasible(&sc.catalog, &sc.net) {
            let hub_ev = evaluate(&sc, &hub_placement);
            // SoCL should beat or roughly match the hub (it can use the hub
            // placement's cost level with strictly better spread). Allow a
            // small tolerance for adversarial tiny scenarios.
            prop_assert!(res.objective() <= hub_ev.objective * 1.10 + 1e-6,
                "socl {} vs hub {}", res.objective(), hub_ev.objective);
        }
    }

    /// λ extremes steer the solution: λ→1 (cost only) never yields a more
    /// expensive deployment than λ→0 (latency only).
    #[test]
    fn lambda_steers_cost(sc in arb_scenario()) {
        let mut cost_heavy = sc.clone();
        cost_heavy.lambda = 0.95;
        let mut latency_heavy = sc;
        latency_heavy.lambda = 0.05;
        let a = SoclSolver::new().solve(&cost_heavy);
        let b = SoclSolver::new().solve(&latency_heavy);
        prop_assert!(a.evaluation.cost <= b.evaluation.cost + 1e-6,
            "λ=0.95 cost {} > λ=0.05 cost {}", a.evaluation.cost, b.evaluation.cost);
    }
}

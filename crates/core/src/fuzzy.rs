//! FuzzyAHP: the local demand factor `ρ` of Definition 9.
//!
//! Algorithm 5 ranks the instances on an overloaded node by importance and
//! evicts the least important. The paper computes that priority with the
//! Fuzzy Analytic Hierarchy Process over four criteria of `m_i` on `v_k`:
//!
//! * deployment cost `κ(m_i)`,
//! * storage requirement `φ(m_i)`,
//! * local requesting-user count `|𝕌_{v_k}^{m_i}|`,
//! * the order factor `ℝ_{v_k}^{m_i} = (3·u_f + 2·u_l + u_m) / |𝕌|`
//!   rewarding services that sit first (heaviest weight) or last in user
//!   dependency chains.
//!
//! This module implements the full machinery: triangular fuzzy numbers,
//! a fuzzy pairwise-comparison matrix, and Chang's extent analysis to derive
//! crisp criterion weights, then scores each instance by the weighted sum of
//! min-max-normalized criterion values (storage contributes inversely — a
//! bulky instance is a better eviction candidate).

/// A triangular fuzzy number `(l, m, u)` with `l ≤ m ≤ u`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriangularFuzzy {
    pub l: f64,
    pub m: f64,
    pub u: f64,
}

impl TriangularFuzzy {
    /// Construct, validating the ordering.
    ///
    /// # Panics
    /// Panics unless `l ≤ m ≤ u`.
    pub fn new(l: f64, m: f64, u: f64) -> Self {
        assert!(l <= m && m <= u, "invalid TFN ({l}, {m}, {u})");
        Self { l, m, u }
    }

    /// The crisp TFN `(v, v, v)`.
    pub fn crisp(v: f64) -> Self {
        Self::new(v, v, v)
    }

    /// Reciprocal `(1/u, 1/m, 1/l)`.
    ///
    /// # Panics
    /// Panics when any component is zero or the TFN spans zero.
    pub fn recip(self) -> Self {
        assert!(self.l > 0.0, "reciprocal of non-positive TFN");
        Self::new(1.0 / self.u, 1.0 / self.m, 1.0 / self.l)
    }

    /// Degree of possibility `V(self ≥ other)` per Chang's extent analysis.
    pub fn possibility_ge(self, o: Self) -> f64 {
        if self.m >= o.m {
            1.0
        } else if o.l >= self.u {
            0.0
        } else {
            (o.l - self.u) / ((self.m - self.u) - (o.m - o.l))
        }
    }
}

/// Fuzzy addition (component-wise).
impl std::ops::Add for TriangularFuzzy {
    type Output = Self;
    fn add(self, o: Self) -> Self {
        Self::new(self.l + o.l, self.m + o.m, self.u + o.u)
    }
}

/// Fuzzy multiplication (approximate, component-wise; standard in AHP).
impl std::ops::Mul for TriangularFuzzy {
    type Output = Self;
    fn mul(self, o: Self) -> Self {
        Self::new(self.l * o.l, self.m * o.m, self.u * o.u)
    }
}

/// A FuzzyAHP instance over `n` criteria.
#[derive(Debug, Clone)]
pub struct FuzzyAhp {
    n: usize,
    /// Row-major pairwise comparison matrix.
    matrix: Vec<TriangularFuzzy>,
}

impl FuzzyAhp {
    /// Build from the upper triangle of judgments: `judgments[(i, j)]` for
    /// `i < j`; the diagonal is `(1,1,1)` and the lower triangle reciprocal.
    ///
    /// # Panics
    /// Panics if a needed judgment is missing.
    pub fn from_upper_triangle(n: usize, judgments: &[((usize, usize), TriangularFuzzy)]) -> Self {
        let mut matrix = vec![TriangularFuzzy::crisp(1.0); n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let j_val = judgments
                    .iter()
                    .find(|((a, b), _)| *a == i && *b == j)
                    .map(|(_, v)| *v)
                    // LINT-ALLOW(L2-panic-free): documented `# Panics`
                    // contract of this constructor — a missing pairwise
                    // judgment is a programming error in the caller's
                    // hierarchy definition, not a runtime condition. Doubles
                    // as the T2-panic-reach barrier behind the constructor.
                    .unwrap_or_else(|| panic!("missing judgment ({i}, {j})"));
                matrix[i * n + j] = j_val;
                matrix[j * n + i] = j_val.recip();
            }
        }
        Self { n, matrix }
    }

    /// The paper's four-criterion hierarchy for the local demand factor, in
    /// order: [user demand `|𝕌|`, order factor `ℝ`, deployment cost `κ`,
    /// storage `φ`]. Judgments encode: demand moderately more important than
    /// the order factor, strongly more than cost, very strongly more than
    /// storage footprint.
    pub fn local_demand_hierarchy() -> Self {
        let j = |l, m, u| TriangularFuzzy::new(l, m, u);
        Self::from_upper_triangle(
            4,
            &[
                ((0, 1), j(1.0, 2.0, 3.0)), // demand vs order
                ((0, 2), j(2.0, 3.0, 4.0)), // demand vs cost
                ((0, 3), j(3.0, 4.0, 5.0)), // demand vs storage
                ((1, 2), j(1.0, 2.0, 3.0)), // order vs cost
                ((1, 3), j(2.0, 3.0, 4.0)), // order vs storage
                ((2, 3), j(1.0, 2.0, 3.0)), // cost vs storage
            ],
        )
    }

    /// Crisp criterion weights by Buckley's fuzzy geometric-mean method:
    /// `r̃_i = (Π_j ã_ij)^{1/n}`, `w̃_i = r̃_i ⊘ Σ r̃`, defuzzified by the
    /// centroid `(l+m+u)/3` and normalized. Unlike Chang's extent analysis
    /// (which zeroes fully dominated criteria), every weight is strictly
    /// positive — required here because even the weakest criterion (storage)
    /// must break ties in the eviction ranking.
    pub fn weights(&self) -> Vec<f64> {
        let n = self.n;
        let exp = 1.0 / n as f64;
        // Fuzzy geometric mean per row.
        let geo: Vec<TriangularFuzzy> = (0..n)
            .map(|i| {
                let prod = (0..n)
                    .map(|j| self.matrix[i * n + j])
                    .fold(TriangularFuzzy::crisp(1.0), |a, b| a * b);
                TriangularFuzzy::new(prod.l.powf(exp), prod.m.powf(exp), prod.u.powf(exp))
            })
            .collect();
        let total = geo
            .iter()
            .copied()
            .fold(TriangularFuzzy::crisp(0.0), |a, b| a + b);
        // w̃_i = geo_i ⊘ total, centroid-defuzzified.
        let crisp: Vec<f64> = geo
            .iter()
            .map(|g| {
                let w = *g * total.recip();
                (w.l + w.m + w.u) / 3.0
            })
            .collect();
        let sum: f64 = crisp.iter().sum();
        crisp.iter().map(|&x| x / sum).collect()
    }
}

/// Min-max normalize `values` into `[0, 1]` (all-equal inputs map to 0.5).
pub fn normalize(values: &[f64]) -> Vec<f64> {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (max - min).abs() < 1e-12 {
        vec![0.5; values.len()]
    } else {
        values.iter().map(|&v| (v - min) / (max - min)).collect()
    }
}

/// Per-instance criterion bundle for the `ρ` score.
#[derive(Debug, Clone, Copy)]
pub struct RhoCriteria {
    /// Local requesting-user count `|𝕌_{v_k}^{m_i}|`.
    pub demand: f64,
    /// Order factor `ℝ_{v_k}^{m_i}`.
    pub order: f64,
    /// Deployment cost `κ(m_i)`.
    pub cost: f64,
    /// Storage footprint `φ(m_i)`.
    pub storage: f64,
}

/// Compute `ρ` for every instance in `criteria` under the paper's hierarchy.
/// Higher `ρ` means higher priority to *keep*; Algorithm 5 evicts the
/// minimum. Storage is inverted (bulky ⇒ lower keep-priority).
pub fn rho_scores(criteria: &[RhoCriteria]) -> Vec<f64> {
    if criteria.is_empty() {
        return Vec::new();
    }
    let w = FuzzyAhp::local_demand_hierarchy().weights();
    let demand = normalize(&criteria.iter().map(|c| c.demand).collect::<Vec<_>>());
    let order = normalize(&criteria.iter().map(|c| c.order).collect::<Vec<_>>());
    let cost = normalize(&criteria.iter().map(|c| c.cost).collect::<Vec<_>>());
    let storage = normalize(&criteria.iter().map(|c| c.storage).collect::<Vec<_>>());
    (0..criteria.len())
        .map(|i| w[0] * demand[i] + w[1] * order[i] + w[2] * cost[i] + w[3] * (1.0 - storage[i]))
        .collect()
}

/// The order factor `ℝ = (3·u_f + 2·u_l + u_m) / |𝕌|` (Definition 9).
/// Returns 0 when no user requests the service here.
pub fn order_factor(first: usize, last: usize, middle: usize) -> f64 {
    let total = first + last + middle;
    if total == 0 {
        0.0
    } else {
        (3 * first + 2 * last + middle) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tfn_arithmetic() {
        let a = TriangularFuzzy::new(1.0, 2.0, 3.0);
        let b = TriangularFuzzy::new(2.0, 3.0, 4.0);
        assert_eq!(a + b, TriangularFuzzy::new(3.0, 5.0, 7.0));
        assert_eq!(a * b, TriangularFuzzy::new(2.0, 6.0, 12.0));
        let r = a.recip();
        assert!((r.l - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.u - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid TFN")]
    fn disordered_tfn_rejected() {
        TriangularFuzzy::new(3.0, 2.0, 1.0);
    }

    #[test]
    fn possibility_degree_basics() {
        let a = TriangularFuzzy::new(1.0, 2.0, 3.0);
        let b = TriangularFuzzy::new(2.0, 3.0, 4.0);
        // b's mode exceeds a's: V(b ≥ a) = 1.
        assert_eq!(b.possibility_ge(a), 1.0);
        // Overlap: 0 < V(a ≥ b) < 1.
        let v = a.possibility_ge(b);
        assert!(v > 0.0 && v < 1.0, "v = {v}");
        // Disjoint: zero.
        let far = TriangularFuzzy::new(10.0, 11.0, 12.0);
        assert_eq!(a.possibility_ge(far), 0.0);
        // Reflexive.
        assert_eq!(a.possibility_ge(a), 1.0);
    }

    #[test]
    fn weights_sum_to_one_and_order_by_importance() {
        let w = FuzzyAhp::local_demand_hierarchy().weights();
        assert_eq!(w.len(), 4);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Buckley weights are strictly positive even for dominated criteria.
        assert!(w.iter().all(|&x| x > 0.0), "{w:?}");
        // Demand dominates; storage is the weakest criterion.
        assert!(w[0] >= w[1] && w[1] >= w[2] && w[2] >= w[3], "{w:?}");
    }

    #[test]
    fn uniform_matrix_gives_uniform_weights() {
        let ahp = FuzzyAhp::from_upper_triangle(
            3,
            &[
                ((0, 1), TriangularFuzzy::crisp(1.0)),
                ((0, 2), TriangularFuzzy::crisp(1.0)),
                ((1, 2), TriangularFuzzy::crisp(1.0)),
            ],
        );
        let w = ahp.weights();
        for &x in &w {
            assert!((x - 1.0 / 3.0).abs() < 1e-9, "{w:?}");
        }
    }

    #[test]
    fn order_factor_weighting() {
        // All-first users: ℝ = 3.
        assert_eq!(order_factor(4, 0, 0), 3.0);
        // All-last: 2; all-middle: 1.
        assert_eq!(order_factor(0, 4, 0), 2.0);
        assert_eq!(order_factor(0, 0, 4), 1.0);
        // Mixed: (3+2+1)/3 = 2.
        assert_eq!(order_factor(1, 1, 1), 2.0);
        // Empty: 0.
        assert_eq!(order_factor(0, 0, 0), 0.0);
    }

    #[test]
    fn rho_prefers_high_demand() {
        let lo = RhoCriteria {
            demand: 1.0,
            order: 1.0,
            cost: 300.0,
            storage: 1.5,
        };
        let hi = RhoCriteria { demand: 9.0, ..lo };
        let rho = rho_scores(&[lo, hi]);
        assert!(rho[1] > rho[0], "{rho:?}");
    }

    #[test]
    fn rho_penalizes_bulky_instances() {
        let slim = RhoCriteria {
            demand: 3.0,
            order: 1.5,
            cost: 300.0,
            storage: 1.0,
        };
        let bulky = RhoCriteria {
            storage: 2.0,
            ..slim
        };
        let rho = rho_scores(&[slim, bulky]);
        assert!(rho[0] > rho[1], "{rho:?}");
    }

    #[test]
    fn normalize_handles_constant_input() {
        assert_eq!(normalize(&[5.0, 5.0, 5.0]), vec![0.5, 0.5, 0.5]);
        let n = normalize(&[0.0, 5.0, 10.0]);
        assert_eq!(n, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn rho_empty_input() {
        assert!(rho_scores(&[]).is_empty());
    }
}

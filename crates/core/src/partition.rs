//! Stage 1 — region-based initial partitioning (Algorithm 1).
//!
//! For every requested microservice `m_i`:
//!
//! 1. collect `V(m_i)`, the nodes hosting user requests for `m_i`,
//! 2. reconnect them into the virtual graph `G′(m_i)` whose links carry the
//!    harmonic channel speed `𝔹(l′)` of the underlying min-hop paths,
//! 3. keep virtual links with `𝔹 > ξ` and take connected components as the
//!    initial partitions `𝒫(m_i) = {p_s(m_i)}`,
//! 4. admit *candidate nodes* `v_η ∉ V(m_i)` into a partition when the
//!    Theorem 1 degree filter holds (`H(v_η) > 2`) and the proactive factor
//!    is negative (Definition 5/6): serving the partition's demand from
//!    `v_η` would be strictly faster than from the best in-partition host.
//!    In-partition alternatives `v_a` are checked in ascending order of
//!    communication intensity `χ(v_a)` with early termination, exactly as
//!    lines 8–14 of Algorithm 1 prescribe.

use crate::config::SoclConfig;
use socl_model::{Scenario, ServiceId};
use socl_net::{communication_intensity, NodeId, Partition, VgCache, VirtualGraph};
use std::sync::Arc;

/// The output of stage 1: partitions per requested service.
#[derive(Debug, Clone)]
pub struct ServicePartitions {
    /// `(service, partitions)`; each partition lists its member nodes
    /// (request-hosting nodes first, admitted candidates appended).
    pub per_service: Vec<(ServiceId, Vec<Partition>)>,
    /// Total number of candidate-node admissions across services.
    pub candidates_added: usize,
}

impl ServicePartitions {
    /// Partitions of `service`, if it was requested.
    pub fn partitions_of(&self, service: ServiceId) -> Option<&[Partition]> {
        self.per_service
            .iter()
            .find(|(s, _)| *s == service)
            .map(|(_, p)| p.as_slice())
    }

    /// Index of the partition of `service` containing `node`.
    pub fn group_of(&self, service: ServiceId, node: NodeId) -> Option<usize> {
        self.partitions_of(service)?
            .iter()
            .position(|p| p.contains(&node))
    }

    /// All requested services covered by this partitioning.
    pub fn services(&self) -> impl Iterator<Item = ServiceId> + '_ {
        self.per_service.iter().map(|(s, _)| *s)
    }
}

/// Per-partition candidate admission (lines 8–14 of Algorithm 1).
///
/// `demand_nodes` are partition members with positive demand `r_i`;
/// `chi_order` lists them in ascending communication intensity.
fn admit_candidates(
    sc: &Scenario,
    service: ServiceId,
    partition: &mut Partition,
    outside: &[NodeId],
    chi: &[f64],
    candidate_filter: bool,
) -> usize {
    // Demand weights r_i within this partition.
    let demand: Vec<(NodeId, f64)> = partition
        .iter()
        .map(|&v| (v, sc.demand(service, v) as f64))
        .filter(|&(_, r)| r > 0.0)
        .collect();
    if demand.is_empty() {
        return 0;
    }

    // In-partition alternatives ordered by ascending χ (line 12).
    let mut alternatives: Vec<NodeId> = demand.iter().map(|&(v, _)| v).collect();
    alternatives.sort_by(|&a, &b| chi[a.idx()].total_cmp(&chi[b.idx()]).then(a.cmp(&b)));

    // Total remote-access delay if the instance lives on `host`.
    // A node serving itself contributes zero (requests are local).
    let total_delay = |host: NodeId| -> f64 {
        demand
            .iter()
            .filter(|&&(v, _)| v != host)
            .map(|&(v, r)| {
                let speed = sc.ap.virtual_speed(v, host);
                if speed.is_finite() && speed > 0.0 {
                    r / speed
                } else {
                    f64::INFINITY
                }
            })
            .sum()
    };

    let mut added = 0;
    for &eta in outside {
        // Theorem 1: candidates need degree > 2.
        if candidate_filter && sc.net.degree(eta) <= 2 {
            continue;
        }
        let term1 = total_delay(eta);
        if !term1.is_finite() {
            continue;
        }
        // Check Δ = term1 − term2 against alternatives in ascending χ,
        // stopping at the first success (lines 11–14).
        let qualifies = alternatives.iter().any(|&a| term1 - total_delay(a) < 0.0);
        if qualifies {
            partition.push(eta);
            added += 1;
        }
    }
    added
}

/// Run Algorithm 1 for every requested service.
pub fn initial_partition(sc: &Scenario, cfg: &SoclConfig) -> ServicePartitions {
    initial_partition_cached(sc, cfg, &mut VgCache::new())
}

/// [`initial_partition`] with a caller-owned virtual-graph memo.
///
/// The virtual graph `G′(m_i)` depends only on the substrate and the hosting
/// set `V(m_i)`, so services sharing a hosting set — and, across slots, any
/// service whose hosting set and topology did not change — share one build.
/// The memo is keyed by [`EdgeNetwork::fingerprint`](socl_net::EdgeNetwork::fingerprint),
/// so a topology change (crash, degradation, repair) invalidates it wholesale.
pub fn initial_partition_cached(
    sc: &Scenario,
    cfg: &SoclConfig,
    vg_cache: &mut VgCache,
) -> ServicePartitions {
    cfg.validate();
    let services = sc.requested_services();
    // Communication intensity χ per node, shared across services.
    let chi: Vec<f64> = sc
        .net
        .node_ids()
        .map(|k| communication_intensity(&sc.ap, k))
        .collect();

    // Resolve every service's virtual graph up front, through the memo.
    let generation = sc.net.fingerprint();
    let prepared: Vec<(ServiceId, Vec<NodeId>, Arc<VirtualGraph>)> = services
        .iter()
        .map(|&service| {
            let hosts = sc.request_nodes(service);
            let vg = vg_cache.get(generation, &hosts, &sc.ap);
            (service, hosts, vg)
        })
        .collect();

    type Prepared = (ServiceId, Vec<NodeId>, Arc<VirtualGraph>);
    let run_one = |(service, hosts, vg): &Prepared| -> (ServiceId, Vec<Partition>, usize) {
        let mut partitions = vg.partition(cfg.xi);
        let outside: Vec<NodeId> = sc.net.node_ids().filter(|k| !hosts.contains(k)).collect();
        let mut added = 0;
        for p in &mut partitions {
            added += admit_candidates(sc, *service, p, &outside, &chi, cfg.candidate_filter);
        }
        (*service, partitions, added)
    };

    // Services are independent; fan out over the thread pool when enabled.
    // par_map reassembles in service order, so output is identical to serial.
    let results: Vec<(ServiceId, Vec<Partition>, usize)> = if cfg.parallel {
        socl_net::par::par_map(&prepared, run_one)
    } else {
        prepared.iter().map(run_one).collect()
    };

    let candidates_added = results.iter().map(|(_, _, a)| a).sum();
    ServicePartitions {
        per_service: results.into_iter().map(|(s, p, _)| (s, p)).collect(),
        candidates_added,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_model::ScenarioConfig;

    fn scenario(seed: u64) -> Scenario {
        ScenarioConfig::paper(12, 40).build(seed)
    }

    fn cfg() -> SoclConfig {
        SoclConfig {
            parallel: false,
            ..SoclConfig::default()
        }
    }

    #[test]
    fn partitions_cover_request_nodes() {
        let sc = scenario(1);
        let parts = initial_partition(&sc, &cfg());
        for (service, partitions) in &parts.per_service {
            let hosts = sc.request_nodes(*service);
            // Every request-hosting node appears in exactly one partition.
            for &h in &hosts {
                let count = partitions.iter().filter(|p| p.contains(&h)).count();
                assert_eq!(count, 1, "{service}: host {h} in {count} partitions");
            }
        }
    }

    #[test]
    fn candidates_have_sufficient_degree_and_no_demand() {
        let sc = scenario(2);
        let parts = initial_partition(&sc, &cfg());
        for (service, partitions) in &parts.per_service {
            let hosts = sc.request_nodes(*service);
            for p in partitions {
                for &v in p {
                    if !hosts.contains(&v) {
                        // Candidate node: Theorem 1 filter enforced.
                        assert!(sc.net.degree(v) > 2, "{service}: candidate {v} degree ≤ 2");
                        assert_eq!(sc.demand(*service, v), 0);
                    }
                }
            }
        }
    }

    #[test]
    fn disabling_filter_is_a_superset_relaxation() {
        let sc = scenario(3);
        let with = initial_partition(&sc, &cfg());
        let without = initial_partition(
            &sc,
            &SoclConfig {
                candidate_filter: false,
                parallel: false,
                ..SoclConfig::default()
            },
        );
        // Without the degree filter, at least as many candidates qualify.
        assert!(without.candidates_added >= with.candidates_added);
    }

    /// Empirical support for Theorem 1: on the paper's clustered topologies,
    /// disabling the degree filter admits *no additional* candidates — every
    /// node with `H(v) ≤ 2` also fails the `Δ < 0` proactive test, exactly
    /// as the theorem argues. The filter is therefore purely a computation
    /// saver, not a quality knob.
    #[test]
    fn theorem_1_degree_filter_is_output_neutral() {
        for seed in [3, 11, 27] {
            let sc = ScenarioConfig::paper(20, 30).build(seed);
            let with = initial_partition(&sc, &cfg());
            let without = initial_partition(
                &sc,
                &SoclConfig {
                    candidate_filter: false,
                    parallel: false,
                    ..SoclConfig::default()
                },
            );
            assert_eq!(
                with.per_service, without.per_service,
                "seed {seed}: filter changed admitted candidates — Theorem 1 violated?"
            );
        }
    }

    #[test]
    fn higher_xi_fragments_partitions() {
        let sc = scenario(4);
        let coarse = initial_partition(
            &sc,
            &SoclConfig {
                xi: 0.1,
                parallel: false,
                ..SoclConfig::default()
            },
        );
        let fine = initial_partition(
            &sc,
            &SoclConfig {
                xi: 50.0,
                parallel: false,
                ..SoclConfig::default()
            },
        );
        let count =
            |p: &ServicePartitions| -> usize { p.per_service.iter().map(|(_, ps)| ps.len()).sum() };
        assert!(count(&fine) >= count(&coarse));
    }

    #[test]
    fn parallel_and_serial_agree() {
        let sc = scenario(5);
        let serial = initial_partition(&sc, &cfg());
        let parallel = initial_partition(
            &sc,
            &SoclConfig {
                parallel: true,
                ..SoclConfig::default()
            },
        );
        assert_eq!(serial.candidates_added, parallel.candidates_added);
        assert_eq!(serial.per_service.len(), parallel.per_service.len());
        for ((s1, p1), (s2, p2)) in serial.per_service.iter().zip(&parallel.per_service) {
            assert_eq!(s1, s2);
            assert_eq!(p1, p2);
        }
    }

    #[test]
    fn group_lookup_is_consistent() {
        let sc = scenario(6);
        let parts = initial_partition(&sc, &cfg());
        for (service, partitions) in &parts.per_service {
            for (idx, p) in partitions.iter().enumerate() {
                for &v in p {
                    assert_eq!(parts.group_of(*service, v), Some(idx));
                }
            }
        }
        assert_eq!(parts.group_of(ServiceId(0), NodeId(999)), None);
    }

    #[test]
    fn vg_memo_is_transparent_and_reused_across_calls() {
        let sc = scenario(8);
        let cold = initial_partition(&sc, &cfg());
        let mut cache = VgCache::new();
        let first = initial_partition_cached(&sc, &cfg(), &mut cache);
        let builds = cache.misses();
        assert!(builds > 0);
        let second = initial_partition_cached(&sc, &cfg(), &mut cache);
        // Unchanged topology and hosting sets: the second call builds nothing.
        assert_eq!(cache.misses(), builds, "memo missed on identical input");
        assert!(cache.hits() >= builds);
        // The memo never changes the output.
        assert_eq!(cold.per_service, first.per_service);
        assert_eq!(first.per_service, second.per_service);
    }

    #[test]
    fn only_requested_services_are_partitioned() {
        let sc = scenario(7);
        let parts = initial_partition(&sc, &cfg());
        let requested = sc.requested_services();
        let covered: Vec<ServiceId> = parts.services().collect();
        assert_eq!(covered, requested);
    }
}

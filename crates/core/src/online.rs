//! Online re-provisioning with warm starts and churn accounting.
//!
//! The paper's SoCL is time-slotted: each slot re-solves on the observed
//! state. Solving from scratch every slot is wasteful *and* operationally
//! expensive — every instance that moves between slots is a container to
//! tear down and cold-start elsewhere (the serverless cost the paper's
//! "flexible storage planning … more warm instances in the nearby area"
//! feature targets). This module adds:
//!
//! * [`placement_churn`] — the number of per-(service, node) changes
//!   between two placements (adds + removals),
//! * [`WarmStartSolver`] — re-provision with the previous slot's placement
//!   as the stage-2 starting point: the previous deployment (pruned to the
//!   current scenario's feasibility) is unioned with the fresh
//!   pre-provisioning, then stage 3 combines as usual and an explicit
//!   churn-penalized relocation acceptance keeps instances where they are
//!   unless moving pays for more than `churn_cost` objective units,
//! * [`repair_placement`] — *failure-triggered* repair: when nodes die
//!   mid-slot, prune the instances they hosted and greedily re-provision
//!   only the affected services on alive nodes. Orders of magnitude cheaper
//!   than a full re-solve, because the untouched services keep their warm
//!   instances (zero churn outside the blast radius).

use crate::combine::Combiner;
use crate::config::SoclConfig;
use crate::partition::initial_partition_cached;
use crate::pipeline::{SoclResult, SoclSolver};
use crate::preprovision::preprovision;
use socl_model::{evaluate, Placement, ReplicaCounts, Scenario, ServiceId};
use socl_net::{NodeId, VgCache};

/// Number of (service, node) cells that differ between two placements.
///
/// # Panics
/// Panics when the shapes differ.
pub fn placement_churn(a: &Placement, b: &Placement) -> usize {
    assert_eq!(a.services(), b.services(), "shape mismatch");
    assert_eq!(a.nodes(), b.nodes(), "shape mismatch");
    let mut churn = 0;
    for i in 0..a.services() {
        for k in 0..a.nodes() {
            let (m, n) = (ServiceId(i as u32), NodeId(k as u32));
            if a.get(m, n) != b.get(m, n) {
                churn += 1;
            }
        }
    }
    churn
}

/// Result of a failure-triggered repair pass.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// The repaired placement.
    pub placement: Placement,
    /// Instances pruned from dead (storage-infeasible) nodes.
    pub pruned: usize,
    /// Requested services that lost at least one instance.
    pub repaired_services: Vec<ServiceId>,
    /// Replicas added back on alive nodes.
    pub replicas_added: usize,
    /// Total cell churn vs the broken placement (prunes + adds).
    pub churn: usize,
}

impl RepairReport {
    /// True when nothing was broken and nothing changed.
    pub fn is_noop(&self) -> bool {
        self.churn == 0
    }
}

/// Failure-triggered repair: prune instances stranded on dead nodes, then
/// greedily re-provision *only the affected services* on alive nodes.
///
/// A node counts as dead when its instances no longer fit its storage —
/// the online simulator models a crash by zeroing the victim's storage, so
/// every hosted instance becomes infeasible at once. For each requested
/// service that lost an instance, replicas are added back one at a time on
/// the alive node that minimizes the evaluated objective, until no addition
/// improves it (cloud fallbacks are charged `cloud_penalty`, so restoring
/// lost coverage always pays first). Services outside the blast radius are
/// never touched, which is what keeps repair cheap and churn low.
pub fn repair_placement(scenario: &Scenario, broken: &Placement) -> RepairReport {
    let mut placement = broken.clone();

    // 1. Prune: drop every instance on a node whose deployment no longer
    //    fits (the node died or shrank under its load).
    let mut pruned = 0usize;
    let mut affected: Vec<ServiceId> = Vec::new();
    for k in scenario.net.node_ids() {
        let used = placement.storage_used(&scenario.catalog, k);
        if used <= scenario.net.storage(k) + 1e-9 {
            continue;
        }
        for i in 0..placement.services() {
            let m = ServiceId(i as u32);
            if placement.get(m, k) {
                placement.set(m, k, false);
                pruned += 1;
                if !affected.contains(&m) {
                    affected.push(m);
                }
            }
        }
    }

    // Only requested services are worth re-provisioning.
    let requested = scenario.requested_services();
    affected.retain(|m| requested.contains(m));
    affected.sort_by_key(|m| m.0);

    // 2. Re-provision the blast radius: per affected service, add replicas
    //    greedily while they improve the objective.
    let mut replicas_added = 0usize;
    if !affected.is_empty() {
        // 2a. Coverage first: a chain falls back to the cloud when *any*
        //     stage is missing, so a lone replica of one stranded service
        //     may show no objective gain until its chain-mates are also
        //     restored. Give every stranded service its best feasible
        //     replica unconditionally before gating on improvement.
        for &m in &affected {
            if placement.instance_count(m) > 0 {
                continue;
            }
            let phi = scenario.catalog.storage(m);
            let mut winner: Option<(f64, NodeId)> = None;
            for k in scenario.net.node_ids() {
                let used = placement.storage_used(&scenario.catalog, k);
                if scenario.net.storage(k) - used < phi - 1e-9 {
                    continue;
                }
                placement.set(m, k, true);
                let obj = evaluate(scenario, &placement).objective;
                placement.set(m, k, false);
                let better = match winner {
                    None => true,
                    Some((w, _)) => obj < w - 1e-12,
                };
                if better {
                    winner = Some((obj, k));
                }
            }
            if let Some((_, k)) = winner {
                placement.set(m, k, true);
                replicas_added += 1;
            }
        }
        // 2b. Then add further replicas wherever they keep improving.
        let mut best = evaluate(scenario, &placement).objective;
        for &m in &affected {
            loop {
                let phi = scenario.catalog.storage(m);
                let mut winner: Option<(f64, NodeId)> = None;
                for k in scenario.net.node_ids() {
                    if placement.get(m, k) {
                        continue;
                    }
                    let used = placement.storage_used(&scenario.catalog, k);
                    if scenario.net.storage(k) - used < phi - 1e-9 {
                        continue;
                    }
                    placement.set(m, k, true);
                    let obj = evaluate(scenario, &placement).objective;
                    placement.set(m, k, false);
                    let better = match winner {
                        None => obj < best - 1e-9,
                        Some((w, _)) => obj < w - 1e-12,
                    };
                    if better {
                        winner = Some((obj, k));
                    }
                }
                match winner {
                    Some((obj, k)) => {
                        placement.set(m, k, true);
                        best = obj;
                        replicas_added += 1;
                    }
                    None => break,
                }
            }
        }
    }

    let churn = placement_churn(broken, &placement);
    RepairReport {
        placement,
        pruned,
        repaired_services: affected,
        replicas_added,
        churn,
    }
}

/// Result of a replica-aware repair pass: the usual [`RepairReport`] plus
/// the warm-replica bookkeeping the serverless control plane needs.
#[derive(Debug, Clone)]
pub struct ReplicaRepairReport {
    /// The underlying placement repair.
    pub report: RepairReport,
    /// Replica counts rewritten for the repaired placement: surviving cells
    /// keep their warm pools, stranded pools are re-homed, and every cell
    /// the repair pass added holds at least one replica.
    pub counts: ReplicaCounts,
    /// Stranded replicas that could be re-homed on surviving hosts.
    pub replicas_transferred: u32,
    /// Stranded replicas for which no surviving host had storage headroom.
    pub replicas_lost: u32,
}

/// How many container images of a service sized `phi` fit node `k`'s
/// storage; a deployed host can always hold one.
fn storage_fit(scenario: &Scenario, k: NodeId, phi: f64) -> u32 {
    if phi <= 0.0 {
        return u32::MAX;
    }
    let fit = (scenario.net.storage(k) / phi).floor();
    if fit >= u32::MAX as f64 {
        u32::MAX
    } else {
        (fit as u32).max(1)
    }
}

/// Failure-triggered repair that preserves the autoscaler's warm-replica
/// pools: [`repair_placement`] fixes the placement, then the stranded
/// cells' replica counts are re-homed onto the surviving hosts instead of
/// being reset to one-per-cell. Re-homing water-fills in node-id order
/// (deterministic), each cell bounded by how many container images fit the
/// node's storage (constraint (6)); replicas that fit nowhere are lost and
/// reported. After the pass, `counts` is consistent with the repaired
/// placement, and every cell repair added holds at least one warm replica
/// (cells the keep-alive policy had scaled to zero stay at zero).
///
/// # Panics
/// Panics when `counts` and `broken` have different shapes.
pub fn repair_with_replicas(
    scenario: &Scenario,
    broken: &Placement,
    counts: &ReplicaCounts,
) -> ReplicaRepairReport {
    assert_eq!(counts.services(), broken.services(), "shape mismatch");
    assert_eq!(counts.nodes(), broken.nodes(), "shape mismatch");
    let report = repair_placement(scenario, broken);
    let repaired = &report.placement;

    let mut new_counts = ReplicaCounts::zero(broken.services(), broken.nodes());
    let mut transferred = 0u32;
    let mut lost = 0u32;
    for i in 0..broken.services() {
        let m = ServiceId(i as u32);
        // Surviving cells keep their pools; pools on pruned cells strand.
        let mut stranded = 0u32;
        for k in scenario.net.node_ids() {
            let c = counts.get(m, k);
            if repaired.get(m, k) {
                new_counts.set(m, k, c);
            } else {
                stranded = stranded.saturating_add(c);
            }
        }
        // Re-home stranded replicas across the surviving hosts, one per
        // host per round in node-id order, bounded by storage fit.
        let hosts = repaired.hosts_of(m);
        let phi = scenario.catalog.storage(m);
        let mut remaining = stranded;
        while remaining > 0 {
            let mut progressed = false;
            for &k in &hosts {
                if remaining == 0 {
                    break;
                }
                let c = new_counts.get(m, k);
                if c < storage_fit(scenario, k, phi) {
                    new_counts.set(m, k, c + 1);
                    remaining -= 1;
                    transferred += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        lost = lost.saturating_add(remaining);
        // Cells repair just added must be warm for the restored coverage to
        // be real; surviving cells the keep-alive policy scaled to zero
        // stay at zero (boot-on-demand owns that case).
        for &k in &hosts {
            if new_counts.get(m, k) == 0 && !broken.get(m, k) {
                new_counts.set(m, k, 1);
            }
        }
    }
    ReplicaRepairReport {
        report,
        counts: new_counts,
        replicas_transferred: transferred,
        replicas_lost: lost,
    }
}

/// Union the scaler-owned warm cells into a freshly solved placement: a
/// cell that still holds warm replicas survives a policy re-solve that
/// dropped it (tearing down a warm pool is exactly the serverless cost the
/// keep-alive policy paid to avoid). Cells that no longer fit their node's
/// storage — e.g. the node died — are instead zeroed in `counts`. Returns
/// the number of cells re-added; afterwards `counts` is consistent with
/// `placement`.
pub fn merge_scaler_owned(
    scenario: &Scenario,
    placement: &mut Placement,
    counts: &mut ReplicaCounts,
) -> usize {
    let warm: Vec<(ServiceId, NodeId)> = counts.iter_positive().map(|(m, k, _)| (m, k)).collect();
    let mut merged = 0usize;
    for (m, k) in warm {
        if placement.get(m, k) {
            continue;
        }
        let phi = scenario.catalog.storage(m);
        let used = placement.storage_used(&scenario.catalog, k);
        if scenario.net.storage(k) - used >= phi - 1e-9 {
            placement.set(m, k, true);
            merged += 1;
        } else {
            counts.set(m, k, 0);
        }
    }
    merged
}

/// A slot-to-slot solver that remembers the previous placement and memoizes
/// virtual-graph builds across slots (the memo self-invalidates when the
/// substrate fingerprint changes, so crashes and degradations stay correct).
#[derive(Debug, Clone)]
pub struct WarmStartSolver {
    /// SoCL configuration used for each slot.
    pub config: SoclConfig,
    previous: Option<Placement>,
    vg_cache: VgCache,
}

/// Result of one warm slot: the SoCL result plus churn relative to the
/// previous slot's placement.
#[derive(Debug, Clone)]
pub struct WarmSlotResult {
    pub result: SoclResult,
    /// Instance churn vs the previous slot (0 for the first slot).
    pub churn: usize,
}

impl WarmStartSolver {
    /// Fresh solver with the given configuration.
    pub fn new(config: SoclConfig) -> Self {
        config.validate();
        Self {
            config,
            previous: None,
            vg_cache: VgCache::new(),
        }
    }

    /// Discard the remembered placement (e.g. after a topology change).
    /// The virtual-graph memo is generation-keyed and needs no flush.
    pub fn reset(&mut self) {
        self.previous = None;
    }

    /// The cross-slot virtual-graph memo (hit/miss counters for telemetry).
    pub fn vg_cache(&self) -> &VgCache {
        &self.vg_cache
    }

    /// Solve one slot. The previous slot's surviving instances are unioned
    /// into the stage-2 starting placement (storage permitting), so stage 3
    /// prefers combining *fresh* duplicates over tearing down warm
    /// instances; the final churn is reported alongside the result.
    pub fn solve_slot(&mut self, scenario: &Scenario) -> WarmSlotResult {
        let result = match self.previous.clone() {
            None => SoclSolver::with_config(self.config.clone())
                .solve_with_vg_cache(scenario, &mut self.vg_cache),
            Some(prev) => self.solve_warm(scenario, prev),
        };
        let churn = self
            .previous
            .as_ref()
            .map(|p| placement_churn(p, &result.placement))
            .unwrap_or(0);
        self.previous = Some(result.placement.clone());
        WarmSlotResult { result, churn }
    }

    fn solve_warm(&mut self, scenario: &Scenario, previous: Placement) -> SoclResult {
        let mut timings = crate::pipeline::StageTimings::default();
        let t = socl_net::time::Stopwatch::start();
        let partitions = initial_partition_cached(scenario, &self.config, &mut self.vg_cache);
        timings.partition = t.elapsed();

        let t = socl_net::time::Stopwatch::start();
        let preprovisioning = preprovision(scenario, &partitions, &self.config);
        // Union the previous placement into the stage-2 start, respecting
        // shape (topology is fixed across slots in the online model) and
        // per-node storage.
        let mut start = preprovisioning.placement.clone();
        if previous.services() == start.services() && previous.nodes() == start.nodes() {
            for (m, k) in previous.iter_deployed() {
                if start.get(m, k) {
                    continue;
                }
                let phi = scenario.catalog.storage(m);
                let used = start.storage_used(&scenario.catalog, k);
                if scenario.net.storage(k) - used >= phi - 1e-9 {
                    start.set(m, k, true);
                }
            }
        }
        timings.preprovision = t.elapsed();

        let t = socl_net::time::Stopwatch::start();
        let (placement, combine_stats) =
            Combiner::new(scenario, &self.config, &partitions, start).run();
        timings.combine = t.elapsed();

        let evaluation = evaluate(scenario, &placement);
        SoclResult {
            placement,
            evaluation,
            partitions,
            preprovisioning,
            combine_stats,
            timings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_model::ScenarioConfig;

    fn cfg() -> SoclConfig {
        SoclConfig {
            parallel: false,
            ..SoclConfig::default()
        }
    }

    fn slot_scenario(seed: u64) -> Scenario {
        ScenarioConfig::paper(10, 40).build(seed)
    }

    #[test]
    fn churn_counts_symmetric_differences() {
        let mut a = Placement::empty(2, 3);
        let mut b = Placement::empty(2, 3);
        assert_eq!(placement_churn(&a, &b), 0);
        a.set(ServiceId(0), NodeId(0), true);
        b.set(ServiceId(1), NodeId(2), true);
        assert_eq!(placement_churn(&a, &b), 2);
        b.set(ServiceId(0), NodeId(0), true);
        assert_eq!(placement_churn(&a, &b), 1);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn churn_requires_matching_shapes() {
        placement_churn(&Placement::empty(1, 2), &Placement::empty(2, 2));
    }

    #[test]
    fn first_slot_has_zero_churn() {
        let mut solver = WarmStartSolver::new(cfg());
        let out = solver.solve_slot(&slot_scenario(1));
        assert_eq!(out.churn, 0);
        assert_eq!(out.result.evaluation.cloud_fallbacks, 0);
    }

    #[test]
    fn identical_slots_have_zero_warm_churn() {
        let sc = slot_scenario(2);
        let mut solver = WarmStartSolver::new(cfg());
        let first = solver.solve_slot(&sc);
        let second = solver.solve_slot(&sc);
        // Same scenario, warm start from its own solution: the combiner
        // starts at (pre ∪ previous) and removes back down; the result must
        // not oscillate.
        assert_eq!(second.churn, 0, "solution oscillated on identical input");
        assert_eq!(
            first.result.placement, second.result.placement,
            "warm start changed the placement on identical input"
        );
    }

    #[test]
    fn warm_start_reduces_churn_between_similar_slots() {
        // Two slots differing only in a few user locations.
        let sc1 = slot_scenario(3);
        let mut sc2 = sc1.clone();
        for r in sc2.requests.iter_mut().take(6) {
            r.location = NodeId((r.location.0 + 1) % 10);
        }

        // Cold: independent solves.
        let cold1 = SoclSolver::with_config(cfg()).solve(&sc1).placement;
        let cold2 = SoclSolver::with_config(cfg()).solve(&sc2).placement;
        let cold_churn = placement_churn(&cold1, &cold2);

        // Warm: second slot starts from the first slot's placement.
        let mut solver = WarmStartSolver::new(cfg());
        let w1 = solver.solve_slot(&sc1);
        let w2 = solver.solve_slot(&sc2);

        assert!(
            w2.churn <= cold_churn,
            "warm churn {} vs cold churn {cold_churn}",
            w2.churn
        );
        // Quality must not collapse: within 10% of the cold solve.
        let cold_obj = evaluate(&sc2, &cold2).objective;
        assert!(
            w2.result.objective() <= cold_obj * 1.10 + 1e-6,
            "warm {} vs cold {cold_obj}",
            w2.result.objective()
        );
        assert_eq!(w1.churn, 0);
    }

    #[test]
    fn warm_slots_reuse_virtual_graph_builds() {
        let sc = slot_scenario(13);
        let mut solver = WarmStartSolver::new(cfg());
        let _ = solver.solve_slot(&sc);
        let builds = solver.vg_cache().misses();
        assert!(builds > 0);
        let _ = solver.solve_slot(&sc);
        // Same topology and hosting sets: the second slot builds no G′.
        assert_eq!(
            solver.vg_cache().misses(),
            builds,
            "warm slot rebuilt virtual graphs"
        );
        assert!(solver.vg_cache().hits() >= builds);
        // A topology change invalidates the memo rather than serving stale
        // graphs: degrade one link and solve again.
        let mut degraded = sc.clone();
        let rate = degraded.net.links()[0].rate();
        degraded.net.override_link_rate(0, rate * 0.25);
        degraded.ap = socl_net::AllPairs::build(&degraded.net);
        let _ = solver.solve_slot(&degraded);
        assert!(
            solver.vg_cache().misses() > builds,
            "memo served stale graphs across a topology change"
        );
    }

    #[test]
    fn reset_forgets_the_previous_placement() {
        let sc = slot_scenario(4);
        let mut solver = WarmStartSolver::new(cfg());
        let _ = solver.solve_slot(&sc);
        solver.reset();
        let after_reset = solver.solve_slot(&sc);
        assert_eq!(after_reset.churn, 0, "reset did not clear the memory");
    }

    #[test]
    fn repair_is_a_noop_on_a_healthy_cluster() {
        let sc = slot_scenario(10);
        let placement = SoclSolver::with_config(cfg()).solve(&sc).placement;
        let report = repair_placement(&sc, &placement);
        assert!(report.is_noop());
        assert_eq!(report.placement, placement);
        assert_eq!(report.pruned, 0);
        assert!(report.repaired_services.is_empty());
    }

    /// Kill `node` the way the online simulator does: zero its storage.
    fn kill_node(sc: &mut Scenario, node: NodeId) {
        sc.net.server_mut(node).storage_units = 0.0;
    }

    /// A node that hosts at least one instance of the placement.
    fn loaded_node(sc: &Scenario, p: &Placement) -> NodeId {
        sc.net
            .node_ids()
            .find(|&k| p.storage_used(&sc.catalog, k) > 0.0)
            .expect("placement deploys nothing")
    }

    #[test]
    fn repair_restores_coverage_after_a_node_death() {
        let mut sc = slot_scenario(11);
        let placement = SoclSolver::with_config(cfg()).solve(&sc).placement;
        assert_eq!(evaluate(&sc, &placement).cloud_fallbacks, 0);

        let victim = loaded_node(&sc, &placement);
        kill_node(&mut sc, victim);
        let report = repair_placement(&sc, &placement);

        assert!(report.pruned > 0, "the victim hosted instances");
        assert!(!report.repaired_services.is_empty());
        // No instance may remain on the dead node…
        for i in 0..report.placement.services() {
            assert!(!report.placement.get(ServiceId(i as u32), victim));
        }
        // …the repaired placement is feasible and at least as good as the
        // pruned-but-unrepaired one.
        assert!(report.placement.storage_feasible(&sc.catalog, &sc.net));
        let mut pruned_only = placement.clone();
        for i in 0..pruned_only.services() {
            pruned_only.set(ServiceId(i as u32), victim, false);
        }
        let unrepaired = evaluate(&sc, &pruned_only).objective;
        let repaired = evaluate(&sc, &report.placement).objective;
        assert!(
            repaired <= unrepaired + 1e-9,
            "repair made things worse: {repaired} vs {unrepaired}"
        );
        assert_eq!(report.churn, report.pruned + report.replicas_added);
    }

    #[test]
    fn repair_never_touches_unaffected_services() {
        let mut sc = slot_scenario(12);
        let placement = SoclSolver::with_config(cfg()).solve(&sc).placement;
        let victim = loaded_node(&sc, &placement);
        kill_node(&mut sc, victim);
        let report = repair_placement(&sc, &placement);
        for i in 0..placement.services() {
            let m = ServiceId(i as u32);
            if report.repaired_services.contains(&m) {
                continue;
            }
            for k in 0..placement.nodes() {
                let n = NodeId(k as u32);
                // Unrequested services can still be pruned off dead nodes;
                // everything else must be untouched.
                if n == victim {
                    continue;
                }
                assert_eq!(
                    placement.get(m, n),
                    report.placement.get(m, n),
                    "repair touched unaffected service {m:?} on node {n:?}"
                );
            }
        }
    }

    #[test]
    fn replica_repair_rehomes_stranded_pools() {
        let mut sc = slot_scenario(14);
        let placement = SoclSolver::with_config(cfg()).solve(&sc).placement;
        // Warm pools: 3 replicas on every deployed cell.
        let mut counts = ReplicaCounts::from_placement(&placement);
        for (m, k) in placement.iter_deployed() {
            counts.set(m, k, 3);
        }
        let victim = loaded_node(&sc, &placement);
        let stranded: u32 = (0..placement.services())
            .map(|i| counts.get(ServiceId(i as u32), victim))
            .sum();
        assert!(stranded > 0);
        kill_node(&mut sc, victim);

        let out = repair_with_replicas(&sc, &placement, &counts);
        // Counts are consistent with the repaired placement and the dead
        // node holds nothing.
        assert!(out.counts.consistent_with(&out.report.placement));
        for i in 0..placement.services() {
            assert_eq!(out.counts.get(ServiceId(i as u32), victim), 0);
        }
        // Every stranded replica is accounted for: re-homed or lost.
        assert_eq!(out.replicas_transferred + out.replicas_lost, stranded);
        // Cells repair added are warm.
        for (m, k) in out.report.placement.iter_deployed() {
            if !placement.get(m, k) {
                assert!(out.counts.get(m, k) >= 1, "repair cell {m:?}@{k:?} cold");
            }
        }
    }

    #[test]
    fn replica_repair_preserves_scaled_to_zero_cells() {
        let mut sc = slot_scenario(15);
        let placement = SoclSolver::with_config(cfg()).solve(&sc).placement;
        let mut counts = ReplicaCounts::from_placement(&placement);
        // One surviving cell was scaled to zero by keep-alive economics.
        let victim = loaded_node(&sc, &placement);
        let zeroed = placement
            .iter_deployed()
            .find(|&(_, k)| k != victim)
            .expect("placement spans more than the victim");
        counts.set(zeroed.0, zeroed.1, 0);
        kill_node(&mut sc, victim);
        let out = repair_with_replicas(&sc, &placement, &counts);
        if out.report.placement.get(zeroed.0, zeroed.1) && out.replicas_transferred == 0 {
            assert_eq!(
                out.counts.get(zeroed.0, zeroed.1),
                0,
                "repair warmed a cell the scaler had deliberately reclaimed"
            );
        }
    }

    #[test]
    fn merge_keeps_warm_cells_alive_across_a_resolve() {
        let sc = slot_scenario(16);
        let solved = SoclSolver::with_config(cfg()).solve(&sc).placement;
        let mut counts = ReplicaCounts::from_placement(&solved);
        // The policy re-solve "drops" every cell; the warm pools bring
        // their cells back.
        let mut fresh = Placement::empty(solved.services(), solved.nodes());
        let merged = merge_scaler_owned(&sc, &mut fresh, &mut counts);
        assert_eq!(merged, solved.iter_deployed().count());
        assert_eq!(fresh, solved);
        assert!(counts.consistent_with(&fresh));
    }

    #[test]
    fn merge_zeroes_pools_on_dead_nodes() {
        let mut sc = slot_scenario(17);
        let solved = SoclSolver::with_config(cfg()).solve(&sc).placement;
        let mut counts = ReplicaCounts::from_placement(&solved);
        let victim = loaded_node(&sc, &solved);
        let warm_on_victim: u32 = (0..solved.services())
            .map(|i| counts.get(ServiceId(i as u32), victim))
            .sum();
        assert!(warm_on_victim > 0);
        kill_node(&mut sc, victim);
        let mut fresh = Placement::empty(solved.services(), solved.nodes());
        merge_scaler_owned(&sc, &mut fresh, &mut counts);
        for i in 0..solved.services() {
            let m = ServiceId(i as u32);
            assert!(!fresh.get(m, victim), "merged a cell onto a dead node");
            assert_eq!(counts.get(m, victim), 0, "warm pool survived node death");
        }
        assert!(counts.consistent_with(&fresh));
    }

    #[test]
    fn warm_solutions_stay_feasible() {
        let mut solver = WarmStartSolver::new(cfg());
        for seed in 5..9 {
            let sc = slot_scenario(seed);
            let out = solver.solve_slot(&sc);
            assert!(out.result.placement.storage_feasible(&sc.catalog, &sc.net));
            assert!(out.result.evaluation.cost <= sc.budget + 1e-6);
            assert_eq!(out.result.evaluation.cloud_fallbacks, 0);
        }
    }
}

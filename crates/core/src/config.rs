//! SoCL hyper-parameters and ablation toggles.

/// How Algorithm 5 chooses which instance to evict from an overloaded node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoragePolicy {
    /// The paper's FuzzyAHP local-demand-factor `ρ` (Definition 9).
    FuzzyAhp,
    /// Ablation baseline: evict the instance with the smallest deployment
    /// cost first, ignoring demand and chain-position structure.
    CheapestOut,
}

/// All knobs of the SoCL pipeline. `Default` reproduces the paper's setup.
#[derive(Debug, Clone)]
pub struct SoclConfig {
    /// Virtual-link communication threshold `ξ` (GB/s): links with
    /// `𝔹(l') > ξ` survive the partition filter of Algorithm 1.
    pub xi: f64,
    /// Parallel-combination fraction `ω ∈ (0, 1]`: each large-scale round
    /// merges the `ω`-smallest-latency-loss instances simultaneously.
    pub omega: f64,
    /// Disturbance factor `Θ ≥ 0` in the small-scale gradient
    /// `δ = Q' − Q″ + Θ`: tolerates small objective rises so the serial
    /// descent does not stop at the first plateau.
    pub theta: f64,
    /// Apply the Theorem 1 candidate filter (`H(v) > 2` and `Δ < 0`).
    /// Disabling it is an ablation: no proactive candidate nodes at all.
    pub candidate_filter: bool,
    /// Storage-planning eviction policy (Algorithm 5).
    pub storage_policy: StoragePolicy,
    /// Evaluate the latency loss `ζ` exactly (chain-aware routing DP delta)
    /// instead of the per-connection `ψ` surrogate of Definition 8. Exact ζ
    /// is the default: it accounts for the co-location effects that chain
    /// routing creates, while the ω-batching keeps SoCL an order of
    /// magnitude cheaper than GC-OG. Disable for the surrogate ablation.
    pub exact_zeta: bool,
    /// Run objective-guided instance migration during the serial stage —
    /// the generalization of Algorithm 5's storage migrations: instead of
    /// moving instances only when a node overflows, the serial stage also
    /// moves an instance to a storage-feasible node whenever that strictly
    /// improves the objective. Combination alone can only *remove*
    /// instances, so this is the mechanism that repairs unlucky stage-2
    /// positions. Disable for the ablation.
    pub relocation: bool,
    /// Evaluate latency losses and partitions in parallel with rayon.
    pub parallel: bool,
    /// Hard cap on combination rounds (defensive; never hit in practice).
    pub max_rounds: usize,
}

impl Default for SoclConfig {
    fn default() -> Self {
        Self {
            xi: 2.0,
            omega: 0.2,
            theta: 1.0,
            candidate_filter: true,
            storage_policy: StoragePolicy::FuzzyAhp,
            exact_zeta: true,
            relocation: true,
            parallel: true,
            max_rounds: 100_000,
        }
    }
}

impl SoclConfig {
    /// Validate parameter ranges.
    ///
    /// # Panics
    /// Panics on out-of-range `ω`, negative `ξ` or negative `Θ`.
    pub fn validate(&self) {
        assert!(
            self.omega > 0.0 && self.omega <= 1.0,
            "ω must be in (0, 1], got {}",
            self.omega
        );
        assert!(self.xi >= 0.0, "ξ must be non-negative, got {}", self.xi);
        assert!(
            self.theta >= 0.0,
            "Θ must be non-negative, got {}",
            self.theta
        );
        assert!(self.max_rounds > 0, "max_rounds must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SoclConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "ω must be")]
    fn zero_omega_rejected() {
        SoclConfig {
            omega: 0.0,
            ..SoclConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "ω must be")]
    fn omega_above_one_rejected() {
        SoclConfig {
            omega: 1.5,
            ..SoclConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "Θ must be")]
    fn negative_theta_rejected() {
        SoclConfig {
            theta: -0.1,
            ..SoclConfig::default()
        }
        .validate();
    }
}

//! Stage 3 — multi-scale combination (Algorithms 3, 4 and 5).
//!
//! An *instance combination* merges two instances of the same microservice
//! into one (removes one copy) to cut provisioning cost; the users that
//! relied on the removed copy perform a *connection update* to the best
//! remaining instance — preferably in the same stage-1 group, at the highest
//! channel speed (the paper's three reconnection criteria). The resulting
//! completion-time increase is the latency loss `ζ_{i,k}` (Definition 8).
//!
//! * **Large-scale (parallel) descent** — while the budget (Eq. 5) is
//!   violated, evaluate `ζ` for every combinable instance (fanned out over
//!   the thread pool), take the `ω`-fraction with the smallest losses, drop the
//!   dependency-conflicted ones (keeping the smaller `ζ` of each conflicted
//!   pair), and combine the whole batch at once.
//! * **Small-scale (serial) descent** — combine one minimum-`ζ` instance at
//!   a time, accept while the objective gradient `δ = Q′ − Q″ + Θ` stays
//!   positive, run storage planning (Algorithm 5) after each step, and roll
//!   back (re-add and lock the instance) when a completion-time bound
//!   (Eq. 4) breaks.
//! * **Storage planning** — per-node overflow resolution: evict the
//!   instance with the lowest FuzzyAHP local demand factor `ρ`
//!   (Definition 9) and migrate it to the nearest (fastest-channel) node
//!   with room; if no node can take it, signal the caller to keep combining.

use crate::config::{SoclConfig, StoragePolicy};
use crate::fuzzy::{order_factor, rho_scores, RhoCriteria};
use crate::partition::ServicePartitions;
use socl_model::{evaluate, Placement, Scenario, ServiceId};
use socl_net::NodeId;

/// Statistics of a combination run, used by tests and the bench harness.
#[derive(Debug, Clone, Default)]
pub struct CombineStats {
    /// Large-scale (parallel) rounds executed.
    pub large_rounds: usize,
    /// Instances removed by the large-scale phase.
    pub large_removed: usize,
    /// Instances removed by the small-scale phase.
    pub small_removed: usize,
    /// Roll-backs triggered by completion-time violations.
    pub rollbacks: usize,
    /// Instance migrations performed by storage planning.
    pub migrations: usize,
    /// Objective after the large-scale (parallel) phase.
    pub objective_after_large: f64,
    /// Objective after the serial phase (before the final migration pass).
    pub objective_after_serial: f64,
    /// Final objective value.
    pub final_objective: f64,
}

/// Signal from storage planning that total storage cannot host the current
/// instance set — Algorithm 5 line 17: continue combining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsufficientStorage;

/// The multi-scale combiner. Owns the evolving placement.
pub struct Combiner<'a> {
    sc: &'a Scenario,
    cfg: &'a SoclConfig,
    parts: &'a ServicePartitions,
    placement: Placement,
    /// Instances excluded from combination after a roll-back.
    locked: Vec<bool>,
    /// `(a, b)` service pairs adjacent in some user chain (symmetric).
    conflicts: Vec<(ServiceId, ServiceId)>,
    stats: CombineStats,
    /// Emit per-round traces to stderr. Off by default; binaries opt in via
    /// [`Combiner::with_debug`] (the library never reads the environment, so
    /// combining stays deterministic under the T1 taint lint).
    debug: bool,
}

/// Per-user data volume consumed by a service: the incoming-edge flow, or
/// the upload volume when the service heads the chain.
fn inbound_data(req: &socl_model::UserRequest, service: ServiceId) -> f64 {
    match req.position_of(service) {
        Some(0) => req.r_in,
        Some(j) => req.edge_data[j - 1],
        None => 0.0,
    }
}

impl<'a> Combiner<'a> {
    /// Start from the stage-2 pre-provisioning.
    pub fn new(
        sc: &'a Scenario,
        cfg: &'a SoclConfig,
        parts: &'a ServicePartitions,
        placement: Placement,
    ) -> Self {
        cfg.validate();
        let mut conflicts = Vec::new();
        for req in &sc.requests {
            for (a, b, _) in req.edges() {
                if !conflicts.contains(&(a, b)) {
                    conflicts.push((a, b));
                    conflicts.push((b, a));
                }
            }
        }
        let locked = vec![false; sc.services() * sc.nodes()];
        Self {
            sc,
            cfg,
            parts,
            placement,
            locked,
            conflicts,
            stats: CombineStats::default(),
            debug: false,
        }
    }

    /// Enable or disable stderr trace output for debugging combine rounds.
    #[must_use]
    pub fn with_debug(mut self, debug: bool) -> Self {
        self.debug = debug;
        self
    }

    fn lock_idx(&self, m: ServiceId, k: NodeId) -> usize {
        m.idx() * self.sc.nodes() + k.idx()
    }

    /// The users currently relying on instance `(service, host)`: each user
    /// requesting `service` relies on the instance minimizing its
    /// transmission-computation cycle `r/b + q/c` (ties to the smaller node
    /// id) — the same accounting `ψ` uses, so `ζ` measures real deltas.
    fn reliers(&self, placement: &Placement, service: ServiceId, host: NodeId) -> Vec<usize> {
        let hosts = placement.hosts_of(service);
        self.sc
            .requests
            .iter()
            .enumerate()
            .filter(|(_, r)| r.uses(service))
            .filter(|(_, r)| {
                self.best_host(&hosts, r.location, inbound_data(r, service), service) == Some(host)
            })
            .map(|(h, _)| h)
            .collect()
    }

    /// Host minimizing the user's cycle cost `r/b(loc, host) + q/c(host)`
    /// (the connection-update target selection).
    fn best_host(
        &self,
        hosts: &[NodeId],
        location: NodeId,
        r: f64,
        service: ServiceId,
    ) -> Option<NodeId> {
        let q = self.sc.catalog.compute_gflop(service);
        hosts.iter().copied().min_by(|&a, &b| {
            let ca = r / self.sc.ap.best_speed(location, a).min(1e12)
                + q / self.sc.net.compute_gflops(a);
            let cb = r / self.sc.ap.best_speed(location, b).min(1e12)
                + q / self.sc.net.compute_gflops(b);
            ca.total_cmp(&cb).then(a.cmp(&b))
        })
    }

    /// Connection-update target after removing `(service, removed)`:
    /// prefer hosts in the user's stage-1 group (criteria 1–2), else any
    /// remaining host (continuity fallback), always at max channel speed.
    fn reconnect_target(
        &self,
        placement: &Placement,
        service: ServiceId,
        removed: NodeId,
        location: NodeId,
        r: f64,
    ) -> Option<NodeId> {
        let remaining: Vec<NodeId> = placement
            .hosts_of(service)
            .into_iter()
            .filter(|&h| h != removed)
            .collect();
        if remaining.is_empty() {
            return None;
        }
        if let Some(group) = self.parts.group_of(service, location) {
            let in_group: Vec<NodeId> = remaining
                .iter()
                .copied()
                .filter(|&h| self.parts.group_of(service, h) == Some(group))
                .collect();
            if let Some(t) = self.best_host(&in_group, location, r, service) {
                return Some(t);
            }
        }
        self.best_host(&remaining, location, r, service)
    }

    /// Latency loss `ζ_{i,k}` (Definition 8): completion-time increase when
    /// `(service, host)` is removed and its reliers reconnect.
    fn latency_loss(&self, placement: &Placement, service: ServiceId, host: NodeId) -> f64 {
        let reliers = self.reliers(placement, service, host);
        let q = self.sc.catalog.compute_gflop(service);
        let mut before = 0.0;
        let mut after = 0.0;
        for h in reliers {
            let req = &self.sc.requests[h];
            let r = inbound_data(req, service);
            let loc = req.location;
            before += r / self.sc.ap.best_speed(loc, host).min(1e12)
                + q / self.sc.net.compute_gflops(host);
            match self.reconnect_target(placement, service, host, loc, r) {
                Some(t) => {
                    after += r / self.sc.ap.best_speed(loc, t).min(1e12)
                        + q / self.sc.net.compute_gflops(t);
                }
                None => return f64::INFINITY, // last instance: never combined
            }
        }
        after - before
    }

    /// Latency delta of `trial` relative to the cached per-request
    /// latencies, re-routing only the requests whose chains use `affected`
    /// — changing one service's hosts cannot alter any other request's
    /// optimal route, so this is exact and ~|M|× cheaper than a full
    /// evaluation.
    fn latency_delta(
        &self,
        trial: &Placement,
        affected: ServiceId,
        current_per_req: &[f64],
    ) -> f64 {
        let mut delta = 0.0;
        for (h, req) in self.sc.requests.iter().enumerate() {
            if !req.uses(affected) {
                continue;
            }
            let new_d = match socl_model::optimal_route(
                req,
                trial,
                &self.sc.net,
                &self.sc.ap,
                &self.sc.catalog,
            ) {
                socl_model::RouteOutcome::Edge { breakdown, .. } => breakdown.total(),
                socl_model::RouteOutcome::CloudFallback => self.sc.cloud_penalty,
            };
            delta += new_d - current_per_req[h];
        }
        delta
    }

    /// Exact combination gradient: the true *objective* delta under
    /// chain-aware optimal routing when `(service, host)` is removed —
    /// `(1−λ)·scale·Δlatency − λ·κ(service)`. This is the quantity the
    /// multi-scale descent of Algorithm 3 actually minimizes (`Q″ − Q′`);
    /// ranking by it makes each round remove the most cost-effective
    /// instances first.
    fn objective_delta_exact(
        &self,
        placement: &Placement,
        current_per_req: &[f64],
        service: ServiceId,
        host: NodeId,
    ) -> f64 {
        let mut trial = placement.clone();
        trial.set(service, host, false);
        let d_latency = self.latency_delta(&trial, service, current_per_req);
        (1.0 - self.sc.lambda) * self.sc.latency_scale * d_latency
            - self.sc.lambda * self.sc.catalog.deploy_cost(service)
    }

    /// Algorithm 4: latency losses of every combinable instance, ascending.
    /// Skips services with a single instance (continuity) and locked pairs.
    fn update_instance_set(&self, placement: &Placement) -> Vec<(f64, ServiceId, NodeId)> {
        let instances: Vec<(ServiceId, NodeId)> = placement
            .iter_deployed()
            .filter(|&(m, _)| placement.instance_count(m) > 1)
            .filter(|&(m, k)| !self.locked[self.lock_idx(m, k)])
            .collect();
        let current_per_req: Vec<f64> = if self.cfg.exact_zeta {
            evaluate(self.sc, placement).per_request
        } else {
            Vec::new()
        };
        let loss = |&(m, k): &(ServiceId, NodeId)| -> (f64, ServiceId, NodeId) {
            let z = if self.cfg.exact_zeta {
                self.objective_delta_exact(placement, &current_per_req, m, k)
            } else {
                self.latency_loss(placement, m, k)
            };
            (z, m, k)
        };
        // Order-preserving fan-out: identical output for any thread count.
        let mut losses: Vec<(f64, ServiceId, NodeId)> = if self.cfg.parallel {
            socl_net::par::par_map(&instances, loss)
        } else {
            instances.iter().map(loss).collect()
        };
        losses.retain(|(z, _, _)| z.is_finite());
        losses.sort_by(|a, b| a.0.total_cmp(&b.0).then((a.1, a.2).cmp(&(b.1, b.2))));
        losses
    }

    fn dependency_conflicted(&self, a: ServiceId, b: ServiceId) -> bool {
        self.conflicts.contains(&(a, b))
    }

    /// Large-scale parallel descent (Algorithm 3 lines 1–5): combine
    /// ω-batches of minimum-loss instances until the budget holds.
    fn large_scale(&mut self) {
        for _ in 0..self.cfg.max_rounds {
            let cost = self.placement.deployment_cost(&self.sc.catalog);
            if cost <= self.sc.budget {
                break;
            }
            let losses = self.update_instance_set(&self.placement);
            if losses.is_empty() {
                break; // nothing combinable; budget cannot be met
            }
            self.stats.large_rounds += 1;
            let batch = ((losses.len() as f64 * self.cfg.omega).ceil() as usize).max(1);
            if self.debug {
                eprintln!(
                    "[combine] round {}: cost {:.0}, top losses: {:?}",
                    self.stats.large_rounds,
                    cost,
                    losses
                        .iter()
                        .take(4)
                        .map(|(z, m, k)| format!("{m}@{k}:{z:.0}"))
                        .collect::<Vec<_>>()
                );
            }

            // Ω = the ω-minimal fraction of the loss list. Conflicted
            // members are *discarded from Ω* (the batch shrinks — it is
            // never refilled with worse-ranked candidates): (a) one
            // combination per service per round — a combination merges two
            // instances of one service, so simultaneous removals of the same
            // service would invalidate each other's ζ; (b) the paper's
            // dependency-conflict filter between chain-adjacent services,
            // keeping the smaller-ζ member of each conflicted pair.
            let mut accepted: Vec<(ServiceId, NodeId)> = Vec::with_capacity(batch);
            for &(_, m, k) in losses.iter().take(batch) {
                if accepted.iter().any(|&(a, _)| a == m) {
                    continue;
                }
                if accepted
                    .iter()
                    .any(|&(a, _)| self.dependency_conflicted(a, m))
                {
                    continue;
                }
                accepted.push((m, k));
            }

            // Parallel combine: apply the batch, re-checking continuity
            // (the batch may contain several instances of one service) and
            // stopping as soon as the budget is met — removing beyond the
            // constraint is the serial phase's decision, not this one's.
            for (m, k) in accepted {
                if self.placement.deployment_cost(&self.sc.catalog) <= self.sc.budget {
                    break;
                }
                if self.placement.instance_count(m) > 1 {
                    self.placement.set(m, k, false);
                    self.stats.large_removed += 1;
                }
            }
        }
    }

    /// Algorithm 5: resolve per-node storage overflows by migrating the
    /// lowest-`ρ` instances to the fastest-channel node with room.
    fn storage_plan(&mut self, placement: &mut Placement) -> Result<(), InsufficientStorage> {
        // Aggregate capacity test (line 1).
        let required: f64 = self
            .sc
            .catalog
            .ids()
            .map(|m| placement.instance_count(m) as f64 * self.sc.catalog.storage(m))
            .sum();
        if self.sc.net.total_storage() < required {
            return Err(InsufficientStorage);
        }

        for k in self.sc.net.node_ids() {
            let mut guard = 0;
            while placement.storage_used(&self.sc.catalog, k) > self.sc.net.storage(k) + 1e-9 {
                guard += 1;
                assert!(guard <= self.sc.services() + 1, "storage planning stuck");
                let services = placement.services_on(k);
                let victim = self.pick_victim(&services, k);
                let Some(victim) = victim else {
                    return Err(InsufficientStorage);
                };
                // Targets ordered by descending channel speed from k.
                let mut targets: Vec<NodeId> = self
                    .sc
                    .net
                    .node_ids()
                    .filter(|&q| q != k && !placement.get(victim, q))
                    .collect();
                targets.sort_by(|&a, &b| {
                    self.sc
                        .ap
                        .best_speed(k, b)
                        .total_cmp(&self.sc.ap.best_speed(k, a))
                        .then(a.cmp(&b))
                });
                let phi = self.sc.catalog.storage(victim);
                let dest = targets.into_iter().find(|&q| {
                    self.sc.net.storage(q) - placement.storage_used(&self.sc.catalog, q)
                        >= phi - 1e-9
                });
                match dest {
                    Some(q) => {
                        placement.set(victim, k, false);
                        placement.set(victim, q, true);
                        self.stats.migrations += 1;
                    }
                    None => return Err(InsufficientStorage),
                }
            }
        }
        Ok(())
    }

    /// Least-important instance on `k` per the configured policy.
    fn pick_victim(&self, services: &[ServiceId], k: NodeId) -> Option<ServiceId> {
        if services.is_empty() {
            return None;
        }
        match self.cfg.storage_policy {
            StoragePolicy::CheapestOut => services.iter().copied().min_by(|&a, &b| {
                self.sc
                    .catalog
                    .deploy_cost(a)
                    .total_cmp(&self.sc.catalog.deploy_cost(b))
                    .then(a.cmp(&b))
            }),
            StoragePolicy::FuzzyAhp => {
                let criteria: Vec<RhoCriteria> = services
                    .iter()
                    .map(|&m| {
                        let mut first = 0;
                        let mut last = 0;
                        let mut middle = 0;
                        let mut demand = 0usize;
                        for req in self.sc.users_at(k) {
                            match req.position_of(m) {
                                Some(0) if req.len() == 1 => {
                                    first += 1;
                                    demand += 1;
                                }
                                Some(0) => {
                                    first += 1;
                                    demand += 1;
                                }
                                Some(j) if j == req.len() - 1 => {
                                    last += 1;
                                    demand += 1;
                                }
                                Some(_) => {
                                    middle += 1;
                                    demand += 1;
                                }
                                None => {}
                            }
                        }
                        RhoCriteria {
                            demand: demand as f64,
                            order: order_factor(first, last, middle),
                            cost: self.sc.catalog.deploy_cost(m),
                            storage: self.sc.catalog.storage(m),
                        }
                    })
                    .collect();
                let rho = rho_scores(&criteria);
                services
                    .iter()
                    .copied()
                    .zip(rho)
                    .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                    .map(|(m, _)| m)
            }
        }
    }

    /// Objective-guided migration (the serial stage's generalization of
    /// Algorithm 5): hill-climb over single-instance moves `(m: k → q)` with
    /// storage-feasible targets until no move improves the objective.
    fn relocate_pass(&mut self) {
        if !self.cfg.relocation {
            return;
        }
        loop {
            let current = evaluate(self.sc, &self.placement);
            // Candidate moves: every deployed instance to every other node
            // with room.
            let moves: Vec<(ServiceId, NodeId, NodeId)> = self
                .placement
                .iter_deployed()
                .flat_map(|(m, k)| {
                    let phi = self.sc.catalog.storage(m);
                    let placement = &self.placement;
                    let sc = self.sc;
                    sc.net
                        .node_ids()
                        .filter(move |&q| {
                            q != k
                                && !placement.get(m, q)
                                && sc.net.storage(q) - placement.storage_used(&sc.catalog, q)
                                    >= phi - 1e-9
                        })
                        .map(move |q| (m, k, q))
                })
                .collect();
            // Moves keep the cost unchanged, so the objective delta is the
            // (scaled) latency delta of the affected service's requests.
            let score = |&(m, k, q): &(ServiceId, NodeId, NodeId)| {
                let mut trial = self.placement.clone();
                trial.set(m, k, false);
                trial.set(m, q, true);
                let d = self.latency_delta(&trial, m, &current.per_request);
                (d, m, k, q)
            };
            let by_delta = |a: &(f64, ServiceId, NodeId, NodeId),
                            b: &(f64, ServiceId, NodeId, NodeId)| {
                a.0.total_cmp(&b.0)
                    .then((a.1, a.2, a.3).cmp(&(b.1, b.2, b.3)))
            };
            // min_by over the order-preserved fan-out ties exactly like the
            // serial scan (by_delta is a total order over the move tuple).
            let best = if self.cfg.parallel {
                socl_net::par::par_map(&moves, score)
                    .into_iter()
                    .min_by(|a, b| by_delta(a, b))
            } else {
                moves.iter().map(score).min_by(by_delta)
            };
            match best {
                Some((d, m, k, q)) if d < -1e-12 => {
                    self.placement.set(m, k, false);
                    self.placement.set(m, q, true);
                    self.stats.migrations += 1;
                }
                _ => break,
            }
        }
    }

    /// Small-scale serial descent (Algorithm 3 lines 6–15).
    fn small_scale(&mut self) {
        // Fix any storage violations inherited from pre-provisioning before
        // measuring the starting objective, then repair unlucky stage-2
        // positions with the migration pass.
        let mut current = self.placement.clone();
        let _ = self.storage_plan(&mut current);
        self.placement = current;
        self.relocate_pass();

        for _ in 0..self.cfg.max_rounds {
            let q_before = evaluate(self.sc, &self.placement).objective;
            let losses = self.update_instance_set(&self.placement);
            let Some(&(z, m, k)) = losses.first() else {
                break;
            };

            // Trial combine + storage planning.
            let mut trial = self.placement.clone();
            trial.set(m, k, false);
            let plan_failed = self.storage_plan(&mut trial).is_err();
            if self.debug {
                eprintln!(
                    "[serial] q_before {:.0}, candidate {m}@{k} z {:.0}, plan_failed {}",
                    q_before, z, plan_failed
                );
            }
            if plan_failed {
                // Aggregate storage is insufficient: keep combining
                // (Algorithm 5 line 17) — accept the removal regardless.
                self.placement = trial;
                self.stats.small_removed += 1;
                continue;
            }

            let ev = evaluate(self.sc, &trial);
            // Completion-time constraint (Eq. 4): roll back and lock.
            let violated = ev
                .per_request
                .iter()
                .zip(&self.sc.requests)
                .any(|(d, r)| *d > r.d_max + 1e-9);
            if violated {
                let idx = self.lock_idx(m, k);
                self.locked[idx] = true;
                self.stats.rollbacks += 1;
                continue;
            }

            // Gradient δ = Q′ − Q″ + Θ; stop when the objective rises by
            // more than the disturbance tolerance.
            let delta = q_before - ev.objective + self.cfg.theta;
            if delta <= 0.0 {
                break;
            }
            self.placement = trial;
            self.stats.small_removed += 1;
        }
    }

    /// Hard storage enforcement: after all descents, resolve any residual
    /// per-node overload. Preference order per overloaded node: migrate the
    /// lowest-`ρ` instance to the node with the most remaining room; if no
    /// node fits it, *combine* it away when the service has another
    /// instance; as a last resort (a service whose single instance fits
    /// nowhere) drop it — requests then fall back to the cloud, which is
    /// the honest semantics of an over-packed edge.
    fn enforce_storage(&mut self) {
        loop {
            let violations = self
                .placement
                .storage_violations(&self.sc.catalog, &self.sc.net);
            let Some(&(node, _)) = violations.first() else {
                break;
            };
            let services = self.placement.services_on(node);
            let Some(victim) = self.pick_victim(&services, node) else {
                break;
            };
            let phi = self.sc.catalog.storage(victim);
            let target = self
                .sc
                .net
                .node_ids()
                .filter(|&q| q != node && !self.placement.get(victim, q))
                .map(|q| {
                    let room =
                        self.sc.net.storage(q) - self.placement.storage_used(&self.sc.catalog, q);
                    (room, q)
                })
                .filter(|&(room, _)| room >= phi - 1e-9)
                .max_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            self.placement.set(victim, node, false);
            match target {
                Some((_, q)) => {
                    self.placement.set(victim, q, true);
                    self.stats.migrations += 1;
                }
                None => {
                    // Removed outright; counts as a (forced) combination.
                    self.stats.small_removed += 1;
                }
            }
        }
    }

    /// Run both descents and return the final placement and statistics.
    pub fn run(mut self) -> (Placement, CombineStats) {
        self.large_scale();
        self.stats.objective_after_large = evaluate(self.sc, &self.placement).objective;
        self.small_scale();
        self.stats.objective_after_serial = evaluate(self.sc, &self.placement).objective;
        // Final repair: combination may have stranded demand; one more
        // migration pass converges to a move-stable local optimum, then
        // storage is enforced unconditionally.
        self.relocate_pass();
        self.enforce_storage();
        self.stats.final_objective = evaluate(self.sc, &self.placement).objective;
        (self.placement, self.stats)
    }

    /// Read-only view of the current placement (for tests).
    pub fn placement(&self) -> &Placement {
        &self.placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::initial_partition;
    use crate::preprovision::preprovision;
    use socl_model::ScenarioConfig;

    fn setup(seed: u64, users: usize) -> (Scenario, SoclConfig) {
        let sc = ScenarioConfig::paper(10, users).build(seed);
        let cfg = SoclConfig {
            parallel: false,
            ..SoclConfig::default()
        };
        (sc, cfg)
    }

    fn run(sc: &Scenario, cfg: &SoclConfig) -> (Placement, CombineStats) {
        let parts = initial_partition(sc, cfg);
        let pre = preprovision(sc, &parts, cfg);
        Combiner::new(sc, cfg, &parts, pre.placement).run()
    }

    #[test]
    fn final_placement_respects_budget_when_possible() {
        let (sc, cfg) = setup(1, 40);
        let (placement, _) = run(&sc, &cfg);
        let cost = placement.deployment_cost(&sc.catalog);
        // One instance of every requested service must fit in the paper's
        // budgets; then the large-scale loop guarantees the bound.
        let min_cost: f64 = sc
            .requested_services()
            .iter()
            .map(|&m| sc.catalog.deploy_cost(m))
            .sum();
        assert!(min_cost <= sc.budget, "scenario sanity");
        assert!(
            cost <= sc.budget + 1e-6,
            "cost {cost} > budget {}",
            sc.budget
        );
    }

    #[test]
    fn service_continuity_is_preserved() {
        let (sc, cfg) = setup(2, 40);
        let (placement, _) = run(&sc, &cfg);
        for m in sc.requested_services() {
            assert!(
                placement.instance_count(m) >= 1,
                "{m} lost all instances during combination"
            );
        }
        let ev = evaluate(&sc, &placement);
        assert_eq!(ev.cloud_fallbacks, 0);
    }

    #[test]
    fn storage_constraint_holds_at_the_end() {
        let (sc, cfg) = setup(3, 50);
        let (placement, _) = run(&sc, &cfg);
        assert!(placement.storage_feasible(&sc.catalog, &sc.net));
    }

    #[test]
    fn combination_improves_over_preprovisioning_objective() {
        let (sc, cfg) = setup(4, 40);
        let parts = initial_partition(&sc, &cfg);
        let pre = preprovision(&sc, &parts, &cfg);
        let before = evaluate(&sc, &pre.placement).objective;
        let (placement, stats) = Combiner::new(&sc, &cfg, &parts, pre.placement).run();
        let after = evaluate(&sc, &placement).objective;
        // Combination trades latency for cost; with Θ tolerance the final
        // objective may sit within Θ·removals of the pre-provisioned one,
        // but in practice it improves. Allow the tolerance margin.
        let slack = cfg.theta * (stats.small_removed as f64 + 1.0);
        assert!(
            after <= before + slack,
            "after {after} vs before {before} (slack {slack})"
        );
    }

    #[test]
    fn latency_losses_are_finite_and_sorted() {
        // ζ may be slightly negative (reconnection can land on a faster CPU
        // because reliance picks by channel speed alone), but must be finite
        // — infinite losses mark last-instance removals, which Algorithm 4
        // filters out — and the list must come back in ascending order.
        let (sc, cfg) = setup(5, 30);
        let parts = initial_partition(&sc, &cfg);
        let pre = preprovision(&sc, &parts, &cfg);
        let combiner = Combiner::new(&sc, &cfg, &parts, pre.placement.clone());
        let losses = combiner.update_instance_set(&pre.placement);
        assert!(!losses.is_empty(), "expected combinable instances");
        for w in losses.windows(2) {
            assert!(w[0].0 <= w[1].0, "losses not sorted");
        }
        for (z, m, _) in &losses {
            assert!(z.is_finite());
            // Only multi-instance services are combinable.
            assert!(pre.placement.instance_count(*m) > 1);
        }
    }

    #[test]
    fn unused_instance_has_zero_latency_loss() {
        let (sc, cfg) = setup(5, 30);
        let parts = initial_partition(&sc, &cfg);
        let pre = preprovision(&sc, &parts, &cfg);
        let combiner = Combiner::new(&sc, &cfg, &parts, pre.placement.clone());
        // Find an instance no user relies on (if any) — its ζ must be 0.
        for (m, k) in pre.placement.iter_deployed() {
            if pre.placement.instance_count(m) > 1
                && combiner.reliers(&pre.placement, m, k).is_empty()
            {
                let z = combiner.latency_loss(&pre.placement, m, k);
                assert_eq!(z, 0.0, "{m}@{k} has no reliers but ζ = {z}");
            }
        }
    }

    #[test]
    fn tight_latency_bounds_trigger_rollbacks() {
        let (mut sc, cfg) = setup(6, 40);
        // Bounds just above the pre-provisioned latency: most combinations
        // should violate and roll back.
        let parts = initial_partition(&sc, &cfg);
        let pre = preprovision(&sc, &parts, &cfg);
        let ev = evaluate(&sc, &pre.placement);
        for (r, d) in sc.requests.iter_mut().zip(&ev.per_request) {
            r.d_max = d * 1.02 + 1e-6;
        }
        let parts = initial_partition(&sc, &cfg);
        let pre = preprovision(&sc, &parts, &cfg);
        let (placement, stats) = Combiner::new(&sc, &cfg, &parts, pre.placement).run();
        // Final latencies never exceed the bounds (unless the budget loop
        // forced removals; with the default generous budget it does not).
        if placement.deployment_cost(&sc.catalog) <= sc.budget {
            let ev = evaluate(&sc, &placement);
            let violations = ev
                .per_request
                .iter()
                .zip(&sc.requests)
                .filter(|(d, r)| **d > r.d_max + 1e-9)
                .count();
            // Large-scale phase does not check Eq. 4 (the paper defers that
            // to the serial phase), so only require that serial roll-backs
            // actually happened under these tight bounds.
            assert!(
                stats.rollbacks > 0 || violations == 0,
                "no rollbacks and {violations} violations"
            );
        }
    }

    #[test]
    fn omega_one_combines_aggressively() {
        let (mut sc, _) = setup(7, 40);
        sc.budget = sc.catalog.total_single_cost() * 1.2; // force combining
        let slow = SoclConfig {
            omega: 0.05,
            parallel: false,
            ..SoclConfig::default()
        };
        let fast = SoclConfig {
            omega: 1.0,
            parallel: false,
            ..SoclConfig::default()
        };
        let parts = initial_partition(&sc, &slow);
        let pre_a = preprovision(&sc, &parts, &slow);
        let (_, stats_slow) = Combiner::new(&sc, &slow, &parts, pre_a.placement).run();
        let pre_b = preprovision(&sc, &parts, &fast);
        let (_, stats_fast) = Combiner::new(&sc, &fast, &parts, pre_b.placement).run();
        if stats_slow.large_rounds > 0 && stats_fast.large_rounds > 0 {
            assert!(stats_fast.large_rounds <= stats_slow.large_rounds);
        }
    }

    #[test]
    fn parallel_and_serial_runs_agree() {
        let (sc, _) = setup(8, 40);
        let serial = SoclConfig {
            parallel: false,
            ..SoclConfig::default()
        };
        let parallel = SoclConfig {
            parallel: true,
            ..SoclConfig::default()
        };
        let (pa, _) = run(&sc, &serial);
        let (pb, _) = run(&sc, &parallel);
        assert_eq!(pa, pb, "parallel evaluation changed the result");
    }

    #[test]
    fn cheapest_out_policy_also_terminates_feasibly() {
        let (sc, _) = setup(9, 50);
        let cfg = SoclConfig {
            storage_policy: StoragePolicy::CheapestOut,
            parallel: false,
            ..SoclConfig::default()
        };
        let (placement, _) = run(&sc, &cfg);
        assert!(placement.storage_feasible(&sc.catalog, &sc.net));
        assert!(placement.covers(&sc.requests));
    }
}

//! # socl-core — the SoCL framework (the paper's contribution)
//!
//! SoCL (Scalable optimization with Cost-efficiency and Latency reduction)
//! solves joint microservice provisioning and routing in three stages
//! (Section IV, Figure 5):
//!
//! 1. **Region-based initial partition** ([`partition`], Algorithm 1) —
//!    per-service virtual graphs over request-hosting nodes, threshold-`ξ`
//!    clustering, and proactive *candidate nodes* admitted by the Theorem 1
//!    degree filter (`H > 2`) plus the `Δ < 0` proactive-factor test.
//! 2. **Instance pre-provisioning** ([`preprovision`], Algorithm 2) —
//!    budget-based instance bounds `N̄(m_i)`, per-partition quotas `ε_s`,
//!    and contribution-guided placement (`𝔻`, Definition 7).
//! 3. **Multi-scale combination** ([`combine`], Algorithms 3–5) —
//!    parallel large-scale instance merging (latency loss `ζ`,
//!    Definition 8, ω-fraction batches, dependency-conflict filtering),
//!    serial small-scale gradient descent with disturbance `Θ`,
//!    FuzzyAHP-driven storage planning ([`fuzzy`], Definition 9) and
//!    roll-back on latency-bound violations.
//!
//! [`pipeline::SoclSolver`] wires the stages together and reports per-stage
//! timings; [`config::SoclConfig`] exposes every hyper-parameter the paper
//! names (`ξ`, `ω`, `Θ`) plus ablation toggles used by the bench harness.

pub mod combine;
pub mod config;
pub mod fuzzy;
pub mod online;
pub mod partition;
pub mod pipeline;
pub mod preprovision;

pub use combine::{CombineStats, Combiner};
pub use config::{SoclConfig, StoragePolicy};
pub use fuzzy::{FuzzyAhp, TriangularFuzzy};
pub use online::{
    merge_scaler_owned, placement_churn, repair_placement, repair_with_replicas, RepairReport,
    ReplicaRepairReport, WarmSlotResult, WarmStartSolver,
};
pub use partition::{initial_partition, ServicePartitions};
pub use pipeline::{SoclResult, SoclSolver, StageTimings};
pub use preprovision::{preprovision, PreProvisioning};

#[cfg(test)]
mod proptests;
#[cfg(test)]
mod proptests_combine;

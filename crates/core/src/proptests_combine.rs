//! Additional property tests focused on the combination stage's invariants.

use crate::combine::Combiner;
use crate::config::{SoclConfig, StoragePolicy};
use crate::partition::initial_partition;
use crate::preprovision::preprovision;
use proptest::prelude::*;
use socl_model::{evaluate, Scenario, ScenarioConfig};

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (8usize..=14, 15usize..=50, any::<u64>(), 4000.0f64..9000.0).prop_map(
        |(nodes, users, seed, budget)| {
            let mut cfg = ScenarioConfig::paper(nodes, users);
            cfg.budget = budget;
            cfg.build(seed)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The combiner never breaks these invariants, for any storage policy
    /// and ζ mode: final storage feasibility, budget compliance whenever a
    /// one-instance-per-service deployment fits it, and service continuity.
    #[test]
    fn combiner_invariants(
        sc in arb_scenario(),
        exact_zeta in any::<bool>(),
        cheapest in any::<bool>(),
        relocation in any::<bool>(),
    ) {
        let cfg = SoclConfig {
            exact_zeta,
            relocation,
            storage_policy: if cheapest { StoragePolicy::CheapestOut } else { StoragePolicy::FuzzyAhp },
            parallel: false,
            ..SoclConfig::default()
        };
        let parts = initial_partition(&sc, &cfg);
        let pre = preprovision(&sc, &parts, &cfg);
        let (placement, stats) = Combiner::new(&sc, &cfg, &parts, pre.placement).run();

        prop_assert!(placement.storage_feasible(&sc.catalog, &sc.net));
        let min_cost: f64 = sc.requested_services().iter()
            .map(|&m| sc.catalog.deploy_cost(m)).sum();
        if min_cost <= sc.budget {
            prop_assert!(
                placement.deployment_cost(&sc.catalog) <= sc.budget + 1e-6,
                "cost {} > budget {}", placement.deployment_cost(&sc.catalog), sc.budget
            );
        }
        // Continuity: combination proper never drops a service to zero;
        // only the storage last-resort can, and then only under extreme
        // packing pressure that these scenarios cannot produce.
        for m in sc.requested_services() {
            prop_assert!(placement.instance_count(m) >= 1, "{m} lost continuity");
        }
        // Stats are self-consistent.
        let ev = evaluate(&sc, &placement);
        prop_assert!((stats.final_objective - ev.objective).abs() < 1e-6);
    }

    /// Relocation can only improve (or preserve) the objective relative to
    /// the same configuration without it.
    #[test]
    fn relocation_never_hurts(sc in arb_scenario()) {
        let with = SoclConfig { relocation: true, parallel: false, ..SoclConfig::default() };
        let without = SoclConfig { relocation: false, parallel: false, ..SoclConfig::default() };
        let parts = initial_partition(&sc, &with);
        let pre_a = preprovision(&sc, &parts, &with);
        let (pa, _) = Combiner::new(&sc, &with, &parts, pre_a.placement.clone()).run();
        let (pb, _) = Combiner::new(&sc, &without, &parts, pre_a.placement).run();
        let ea = evaluate(&sc, &pa).objective;
        let eb = evaluate(&sc, &pb).objective;
        // The descents interleave differently, so strict dominance does not
        // hold pointwise — but relocation must not catastrophically regress.
        prop_assert!(ea <= eb * 1.10 + 1e-6, "relocation regressed: {ea} vs {eb}");
    }
}

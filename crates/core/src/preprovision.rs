//! Stage 2 — instance pre-provisioning (Algorithm 2).
//!
//! Budget-based bound: the maximum tolerable instance count of `m_i` is
//! `𝒩^u(m_i) = ⌊(𝒦^max − Σ_{j≠i} κ(m_j)) / κ(m_i)⌋` (one instance of every
//! other service is reserved first), floored at 1 so no requested service is
//! starved, and capped by `|V(m_i)|` — instances beyond the demand-hosting
//! node count cannot help: `𝒩̄(m_i) = min(|V(m_i)|, 𝒩^u(m_i))`.
//!
//! Each partition receives a quota proportional to its share of demand,
//! `ε_s = |𝕌_{p_s}| / Σ_s |𝕌_{p_s}|`. A partition whose quota covers all its
//! nodes is provisioned everywhere (line 9); otherwise nodes are picked by
//! ascending instance contribution `𝔻_{p_s}(v_k)` (Definition 7) — the
//! estimated group completion time if `v_k` were the partition's only host —
//! until the quota is met, with a floor of one instance per partition (the
//! paper's "each connectivity-based group has at least one instance").

use crate::config::SoclConfig;
use crate::partition::ServicePartitions;
use socl_model::{Placement, Scenario, ServiceId};
use socl_net::NodeId;

/// The output of stage 2.
#[derive(Debug, Clone)]
pub struct PreProvisioning {
    /// The pre-provisioned deployment matrix `𝒫^t` as a placement.
    pub placement: Placement,
    /// `(service, per-partition provisioned node lists p_s^t(m_i))`,
    /// parallel to the stage-1 partition structure.
    pub per_partition: Vec<(ServiceId, Vec<Vec<NodeId>>)>,
    /// The instance bound `𝒩̄(m_i)` per requested service.
    pub bounds: Vec<(ServiceId, usize)>,
}

impl PreProvisioning {
    /// Provisioned nodes of `service` across all partitions.
    pub fn hosts_of(&self, service: ServiceId) -> Vec<NodeId> {
        self.per_partition
            .iter()
            .find(|(s, _)| *s == service)
            .map(|(_, parts)| parts.iter().flatten().copied().collect())
            .unwrap_or_default()
    }

    /// The bound `𝒩̄` for `service` (None if not requested).
    pub fn bound_of(&self, service: ServiceId) -> Option<usize> {
        self.bounds
            .iter()
            .find(|(s, _)| *s == service)
            .map(|&(_, b)| b)
    }
}

/// Instance contribution `𝔻_{p_s(m_i)}(v_k)` (Definition 7): the estimated
/// overall completion time for the group if `v_k` hosted the only instance.
fn instance_contribution(
    sc: &Scenario,
    service: ServiceId,
    partition: &[NodeId],
    candidate: NodeId,
) -> f64 {
    let remote: f64 = partition
        .iter()
        .filter(|&&v| v != candidate)
        .map(|&v| {
            let r = sc.demand(service, v) as f64;
            if r == 0.0 {
                return 0.0;
            }
            let speed = sc.ap.virtual_speed(v, candidate);
            if speed.is_finite() && speed > 0.0 {
                r / speed
            } else {
                f64::INFINITY
            }
        })
        .sum();
    remote + sc.catalog.compute_gflop(service) / sc.net.compute_gflops(candidate)
}

/// Run Algorithm 2 on the stage-1 partitions.
///
/// Placement is storage-aware: a node that cannot fit `φ(m_i)` within its
/// remaining capacity `Φ(v_k)` is skipped and the next-best node by
/// instance contribution takes its place. Stage 3's combination therefore
/// always starts from a feasible deployment (Eq. 6 holds throughout the
/// pipeline; Algorithm 5 only has to act when combination migrations are
/// later forced).
pub fn preprovision(sc: &Scenario, parts: &ServicePartitions, cfg: &SoclConfig) -> PreProvisioning {
    cfg.validate();
    let mut placement = Placement::empty(sc.services(), sc.nodes());
    let mut per_partition = Vec::with_capacity(parts.per_service.len());
    let mut bounds = Vec::with_capacity(parts.per_service.len());
    let mut used = vec![0.0f64; sc.nodes()];

    // Instance contributions are pure functions of the scenario, so the
    // scoring (the expensive part: one virtual-speed scan per candidate) fans
    // out over services; the storage-accounting sweep below stays sequential
    // because `used` threads through every choice.
    let score_service = |(service, partitions): &(ServiceId, Vec<Vec<NodeId>>)| {
        partitions
            .iter()
            .map(|p| {
                let mut scored: Vec<(f64, NodeId)> = p
                    .iter()
                    .map(|&v| (instance_contribution(sc, *service, p, v), v))
                    .collect();
                scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                scored
            })
            .collect::<Vec<_>>()
    };
    let scored_all: Vec<Vec<Vec<(f64, NodeId)>>> = if cfg.parallel {
        socl_net::par::par_map(&parts.per_service, score_service)
    } else {
        parts.per_service.iter().map(score_service).collect()
    };

    for ((service, partitions), scored_parts) in parts.per_service.iter().zip(&scored_all) {
        let service = *service;
        // Budget-based bound 𝒩̄(m_i).
        let kappa = sc.catalog.deploy_cost(service);
        let reserved = sc.catalog.cost_of_others(service);
        let n_budget = (((sc.budget - reserved) / kappa).floor() as i64).max(1) as usize;
        let n_demand = sc.request_nodes(service).len().max(1);
        let bound = n_budget.min(n_demand);
        bounds.push((service, bound));

        // Demand per partition.
        let demands: Vec<f64> = partitions
            .iter()
            .map(|p| p.iter().map(|&v| sc.demand(service, v) as f64).sum())
            .collect();
        let total_demand: f64 = demands.iter().sum();

        let mut provisioned_parts: Vec<Vec<NodeId>> = Vec::with_capacity(partitions.len());
        for ((p, &part_demand), scored) in partitions.iter().zip(&demands).zip(scored_parts) {
            let epsilon = if total_demand > 0.0 {
                part_demand / total_demand
            } else {
                1.0 / partitions.len() as f64
            };
            let quota = epsilon * bound as f64;
            let phi = sc.catalog.storage(service);
            let fits = |v: NodeId, used: &[f64]| sc.net.storage(v) - used[v.idx()] >= phi - 1e-9;
            // Nodes come pre-sorted by ascending instance contribution (used
            // by both branches: the whole-partition branch also needs an
            // order when storage rejects some members).
            let count = if quota >= p.len() as f64 {
                // Quota covers the whole partition: provision everywhere
                // (storage permitting).
                p.len()
            } else {
                (quota.ceil() as usize).clamp(1, p.len())
            };
            let mut chosen: Vec<NodeId> = Vec::with_capacity(count);
            for &(_, v) in scored.iter() {
                if chosen.len() >= count {
                    break;
                }
                if fits(v, &used) {
                    chosen.push(v);
                    used[v.idx()] += phi;
                }
            }
            // Continuity floor: if storage rejected everything, fall back to
            // the member with the most remaining capacity so the partition
            // keeps one instance (stage 3's storage enforcement will clean
            // up any residual overload).
            if chosen.is_empty() {
                if let Some(&v) = p.iter().max_by(|&&a, &&b| {
                    let ra = sc.net.storage(a) - used[a.idx()];
                    let rb = sc.net.storage(b) - used[b.idx()];
                    ra.total_cmp(&rb).then(b.cmp(&a))
                }) {
                    chosen.push(v);
                    used[v.idx()] += phi;
                }
            }
            for &v in &chosen {
                placement.set(service, v, true);
            }
            provisioned_parts.push(chosen);
        }
        per_partition.push((service, provisioned_parts));
    }

    PreProvisioning {
        placement,
        per_partition,
        bounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::initial_partition;
    use socl_model::{evaluate, ScenarioConfig};

    fn setup(seed: u64) -> (Scenario, ServicePartitions, SoclConfig) {
        let sc = ScenarioConfig::paper(12, 40).build(seed);
        let cfg = SoclConfig {
            parallel: false,
            ..SoclConfig::default()
        };
        let parts = initial_partition(&sc, &cfg);
        (sc, parts, cfg)
    }

    #[test]
    fn every_requested_service_is_covered() {
        let (sc, parts, cfg) = setup(1);
        let pre = preprovision(&sc, &parts, &cfg);
        for m in sc.requested_services() {
            assert!(
                pre.placement.instance_count(m) >= 1,
                "{m} has no pre-provisioned instance"
            );
        }
        let ev = evaluate(&sc, &pre.placement);
        assert_eq!(ev.cloud_fallbacks, 0);
    }

    #[test]
    fn every_partition_gets_at_least_one_instance() {
        let (sc, parts, cfg) = setup(2);
        let pre = preprovision(&sc, &parts, &cfg);
        for ((service, partitions), (s2, provisioned)) in
            parts.per_service.iter().zip(&pre.per_partition)
        {
            assert_eq!(service, s2);
            for (p, chosen) in partitions.iter().zip(provisioned) {
                assert!(
                    !chosen.is_empty(),
                    "{service}: partition {p:?} has no instance"
                );
                // Chosen nodes are members of the partition.
                for v in chosen {
                    assert!(p.contains(v));
                }
            }
        }
    }

    #[test]
    fn bounds_respect_budget_and_demand() {
        let (sc, parts, cfg) = setup(3);
        let pre = preprovision(&sc, &parts, &cfg);
        for (service, bound) in &pre.bounds {
            assert!(*bound >= 1);
            assert!(*bound <= sc.request_nodes(*service).len().max(1));
        }
        // The per-service instance count is within bound plus the
        // one-per-partition floor slack.
        for (service, partitions) in &parts.per_service {
            let bound = pre.bound_of(*service).unwrap();
            let count = pre.placement.instance_count(*service);
            assert!(
                count <= bound + partitions.len(),
                "{service}: {count} instances vs bound {bound} (+{} partitions)",
                partitions.len()
            );
        }
    }

    #[test]
    fn tight_budget_shrinks_provisioning() {
        let (sc, parts, cfg) = setup(4);
        let generous = preprovision(&sc, &parts, &cfg);
        let mut tight_sc = sc.clone();
        tight_sc.budget = tight_sc.catalog.total_single_cost(); // ~1 each
        let tight_parts = initial_partition(&tight_sc, &cfg);
        let tight = preprovision(&tight_sc, &tight_parts, &cfg);
        assert!(tight.placement.total_instances() <= generous.placement.total_instances());
    }

    #[test]
    fn placement_matches_per_partition_listing() {
        let (sc, parts, cfg) = setup(5);
        let pre = preprovision(&sc, &parts, &cfg);
        for (service, provisioned) in &pre.per_partition {
            let mut from_parts: Vec<NodeId> = provisioned.iter().flatten().copied().collect();
            from_parts.sort();
            from_parts.dedup();
            let mut from_placement = pre.placement.hosts_of(*service);
            from_placement.sort();
            assert_eq!(from_parts, from_placement, "{service}");
        }
    }

    #[test]
    fn contribution_prefers_local_demand() {
        // In a two-node partition where all demand sits on node A, hosting at
        // A eliminates remote transfers entirely (assuming comparable CPUs):
        // 𝔻(A) must not exceed 𝔻(B) by more than the compute-speed delta.
        let (sc, parts, cfg) = setup(6);
        let pre = preprovision(&sc, &parts, &cfg);
        // Sanity: contribution-guided choice never leaves a partition's
        // demand fully remote when a demand node was available and chosen
        // count is 1 — verified indirectly by the instance existing within
        // the partition (checked above). Here we verify determinism instead.
        let pre2 = preprovision(&sc, &parts, &cfg);
        assert_eq!(pre.placement, pre2.placement);
    }
}

//! User-preference modeling (the paper's stated future work).
//!
//! The conclusion announces "user behavior modeling and preference
//! integration to support context-aware resource management" as future
//! work. This module provides the modeling half: each user carries a stable
//! preference vector over the microservice pool, and chain sampling weights
//! every successor choice by those preferences. Two consequences the online
//! system can exploit:
//!
//! * a user's successive requests are *self-similar* (the same user
//!   re-draws similar chains), so warm-started provisioning retains value
//!   across slots even with chain churn,
//! * different users are *dissimilar*, preserving the heterogeneity that
//!   motivated SoCL in the first place.
//!
//! Both properties are asserted statistically in the tests.

use crate::dataset::{ChainScratch, DependencyDataset};
use crate::request::{RequestConfig, UserId, UserRequest};
use crate::service::ServiceId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socl_net::NodeId;

/// Per-user affinity weights over the service pool.
#[derive(Debug, Clone)]
pub struct PreferenceModel {
    /// `weights[user][service]`, strictly positive.
    weights: Vec<Vec<f64>>,
    /// Sharpness: 1 = use weights as-is, larger = more deterministic users.
    pub temperature: f64,
}

impl PreferenceModel {
    /// Sample a preference model: each user gets a sparse affinity profile
    /// (strong pull to a few favourite services, baseline elsewhere).
    pub fn sample(users: usize, services: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE_BA5E);
        let weights = (0..users)
            .map(|_| {
                let mut w = vec![1.0f64; services];
                // 2–4 favourite services with a strong multiplier.
                let favs = rng.gen_range(2..=4usize.min(services.max(2)));
                for _ in 0..favs {
                    let s = rng.gen_range(0..services);
                    w[s] *= rng.gen_range(4.0..10.0);
                }
                w
            })
            .collect();
        Self {
            weights,
            temperature: 1.0,
        }
    }

    /// Number of users covered.
    pub fn users(&self) -> usize {
        self.weights.len()
    }

    /// The affinity of `user` for `service`.
    pub fn weight(&self, user: usize, service: ServiceId) -> f64 {
        self.weights[user][service.idx()].powf(self.temperature)
    }

    /// Weighted choice among `options` for `user`.
    fn choose<R: Rng>(&self, user: usize, options: &[u32], rng: &mut R) -> u32 {
        debug_assert!(!options.is_empty());
        let total: f64 = options
            .iter()
            .map(|&s| self.weight(user, ServiceId(s)))
            .sum();
        let mut pick = rng.gen::<f64>() * total;
        for &s in options {
            pick -= self.weight(user, ServiceId(s));
            if pick <= 0.0 {
                return s;
            }
        }
        // Rounding can leave `pick` marginally positive after the loop; the
        // last option is the correct weighted choice then. Empty `options`
        // violates the debug-asserted precondition; fall back to service 0
        // rather than panicking in release.
        options.last().copied().unwrap_or(0)
    }

    /// Sample a loop-free chain for `user`: like
    /// [`DependencyDataset::sample_chain`], but successor choice is weighted
    /// by the user's affinities (entry choice too).
    pub fn sample_chain<R: Rng>(
        &self,
        dataset: &DependencyDataset,
        user: usize,
        rng: &mut R,
        min_len: usize,
        max_len: usize,
    ) -> Vec<ServiceId> {
        let mut scratch = ChainScratch::new();
        let mut out = Vec::new();
        self.sample_chain_into(dataset, user, rng, min_len, max_len, &mut scratch, &mut out);
        out
    }

    /// [`sample_chain`](Self::sample_chain) into caller-owned buffers — the
    /// allocation-free form the online simulator's churn loop uses (rule
    /// `A1-hot-alloc`). The chain is left in `out` (previous contents
    /// discarded); `scratch` is recycled across calls.
    ///
    /// Draws from `rng` in exactly the same order as `sample_chain`, so a
    /// seeded run produces identical chains through either entry point.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_chain_into<R: Rng>(
        &self,
        dataset: &DependencyDataset,
        user: usize,
        rng: &mut R,
        min_len: usize,
        max_len: usize,
        scratch: &mut ChainScratch,
        out: &mut Vec<ServiceId>,
    ) {
        let max_len = max_len.max(1);
        let min_len = min_len.clamp(1, max_len);
        let ChainScratch {
            attempt,
            succ,
            head,
        } = scratch;
        out.clear();
        for _ in 0..8 {
            let target = rng.gen_range(min_len..=max_len);
            // Head drawn from the dataset's entry points (its own sampler
            // encodes them); preferences steer the walk from there. The
            // head sampler borrows `attempt`/`succ` as scratch — both are
            // dead here and reset immediately after.
            dataset.sample_chain_into(rng, 1, 1, attempt, succ, head);
            attempt.clear();
            let Some(&h) = head.first() else {
                break;
            };
            attempt.push(h);
            let mut cur = h.0;
            while attempt.len() < target {
                succ.clear();
                for s in dataset.successors_iter(cur) {
                    if !attempt.contains(&ServiceId(s)) {
                        succ.push(s);
                    }
                }
                if succ.is_empty() {
                    break;
                }
                cur = self.choose(user, succ, rng);
                attempt.push(ServiceId(cur));
            }
            if attempt.len() >= min_len {
                std::mem::swap(out, attempt);
                return;
            }
            if attempt.len() > out.len() {
                std::mem::swap(out, attempt);
            }
        }
    }

    /// Sample a full preference-driven request set over `nodes` stations.
    pub fn sample_requests<R: Rng>(
        &self,
        dataset: &DependencyDataset,
        rng: &mut R,
        nodes: usize,
        cfg: &RequestConfig,
    ) -> Vec<UserRequest> {
        assert!(nodes > 0);
        (0..self.users())
            .map(|h| {
                let chain = self.sample_chain(dataset, h, rng, cfg.chain_len.0, cfg.chain_len.1);
                let edge_data = (0..chain.len().saturating_sub(1))
                    .map(|_| rng.gen_range(cfg.edge_data.0..=cfg.edge_data.1))
                    .collect();
                UserRequest::new(
                    UserId(h as u32),
                    NodeId(rng.gen_range(0..nodes as u32)),
                    chain,
                    edge_data,
                    rng.gen_range(cfg.r_in.0..=cfg.r_in.1),
                    rng.gen_range(cfg.r_out.0..=cfg.r_out.1),
                    cfg.d_max,
                )
            })
            .collect()
    }
}

/// Jaccard similarity of two chains' service sets — the self-similarity
/// statistic used to validate the model.
pub fn chain_similarity(a: &[ServiceId], b: &[ServiceId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.iter().filter(|s| b.contains(s)).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::EshopDataset;

    #[test]
    fn chains_remain_valid_dag_walks() {
        let ds = EshopDataset::build();
        let prefs = PreferenceModel::sample(10, ds.len(), 1);
        let mut rng = StdRng::seed_from_u64(2);
        for user in 0..10 {
            for _ in 0..50 {
                let chain = prefs.sample_chain(&ds, user, &mut rng, 2, 8);
                assert!(!chain.is_empty());
                for w in chain.windows(2) {
                    assert!(ds.successors(w[0].0).contains(&w[1].0));
                }
                let mut d = chain.clone();
                d.sort();
                d.dedup();
                assert_eq!(d.len(), chain.len());
            }
        }
    }

    #[test]
    fn same_user_is_more_self_similar_than_cross_user() {
        let ds = EshopDataset::build();
        let prefs = PreferenceModel::sample(20, ds.len(), 3);
        let mut rng = StdRng::seed_from_u64(4);
        // Mean self-similarity: consecutive chains of the same user.
        let mut self_sim = 0.0;
        let mut cross_sim = 0.0;
        let mut n = 0.0;
        for user in 0..20 {
            let a = prefs.sample_chain(&ds, user, &mut rng, 3, 8);
            let b = prefs.sample_chain(&ds, user, &mut rng, 3, 8);
            let other = prefs.sample_chain(&ds, (user + 7) % 20, &mut rng, 3, 8);
            self_sim += chain_similarity(&a, &b);
            cross_sim += chain_similarity(&a, &other);
            n += 1.0;
        }
        self_sim /= n;
        cross_sim /= n;
        assert!(
            self_sim > cross_sim,
            "self {self_sim:.3} should exceed cross {cross_sim:.3}"
        );
    }

    #[test]
    fn preference_weighting_biases_choices() {
        // A user with an overwhelming preference for identity-api should
        // traverse it far more often than an indifferent user.
        let ds = EshopDataset::build();
        let mut prefs = PreferenceModel::sample(2, ds.len(), 5);
        // User 0: force a massive identity affinity; user 1: flat.
        prefs.weights[0] = vec![1.0; ds.len()];
        prefs.weights[0][EshopDataset::IDENTITY_API as usize] = 1000.0;
        prefs.weights[1] = vec![1.0; ds.len()];
        let mut rng = StdRng::seed_from_u64(6);
        let count = |user: usize, rng: &mut StdRng| -> usize {
            (0..300)
                .filter(|_| {
                    prefs
                        .sample_chain(&ds, user, rng, 2, 4)
                        .contains(&ServiceId(EshopDataset::IDENTITY_API))
                })
                .count()
        };
        let biased = count(0, &mut rng);
        let flat = count(1, &mut rng);
        assert!(
            biased > flat,
            "biased user hit identity {biased} times vs flat {flat}"
        );
    }

    #[test]
    fn requests_are_well_formed() {
        let ds = EshopDataset::build();
        let prefs = PreferenceModel::sample(15, ds.len(), 7);
        let mut rng = StdRng::seed_from_u64(8);
        let reqs = prefs.sample_requests(&ds, &mut rng, 6, &RequestConfig::default());
        assert_eq!(reqs.len(), 15);
        for r in &reqs {
            assert!(r.location.0 < 6);
        }
    }

    #[test]
    fn chain_similarity_bounds() {
        let a = vec![ServiceId(0), ServiceId(1)];
        let b = vec![ServiceId(1), ServiceId(2)];
        assert!((chain_similarity(&a, &a) - 1.0).abs() < 1e-12);
        assert!((chain_similarity(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(chain_similarity(&[], &[]), 1.0);
    }
}

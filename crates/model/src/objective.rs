//! The joint objective (Eq. 3/8) and constraint checking (Eqs. 4–6).
//!
//! `evaluate` routes every request optimally under the given placement and
//! returns the weighted objective
//!
//! ```text
//! Q(x) = λ · Σ_k 𝒦_k + (1-λ) · latency_scale · Σ_h 𝒟_h
//! ```
//!
//! where cloud fallbacks contribute `cloud_penalty` seconds each. The
//! [`ConstraintReport`] collects violations of the per-request completion
//! bound (Eq. 4), the budget (Eq. 5) and per-node storage (Eq. 6).

use crate::placement::{Assignment, Placement};
use crate::routing::{optimal_route, RouteOutcome};
use crate::scenario::Scenario;
use socl_net::NodeId;

/// Full evaluation of a placement: routing, latency, cost, objective.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Total deployment cost `Σ_k 𝒦_k`.
    pub cost: f64,
    /// Sum of completion times `Σ_h 𝒟_h` in seconds (cloud fallbacks counted
    /// at `cloud_penalty` each).
    pub total_latency: f64,
    /// Per-request completion times in seconds (fallbacks at the penalty).
    pub per_request: Vec<f64>,
    /// Number of requests that fell back to the cloud.
    pub cloud_fallbacks: usize,
    /// The optimal assignment used for the latency terms.
    pub assignment: Assignment,
    /// The weighted objective `Q`.
    pub objective: f64,
}

impl Evaluation {
    /// Mean completion time per request, seconds.
    pub fn mean_latency(&self) -> f64 {
        if self.per_request.is_empty() {
            0.0
        } else {
            self.total_latency / self.per_request.len() as f64
        }
    }

    /// Maximum completion time across requests, seconds.
    pub fn max_latency(&self) -> f64 {
        self.per_request.iter().copied().fold(0.0, f64::max)
    }
}

/// Evaluate `placement` on `scenario` with exact (DP) routing.
///
/// Requests are independent, so the routing DP fans out over the configured
/// thread pool when the workload clears the spawn-overhead threshold. Results
/// are reassembled and summed in request order, so the evaluation is
/// bit-identical for any thread count (including the serial path).
pub fn evaluate(scenario: &Scenario, placement: &Placement) -> Evaluation {
    // The per-request DP is O(|chain| · |V|²).
    let unit = scenario.nodes() * scenario.nodes() * 8;
    let threads = if socl_net::parallel_worthwhile(scenario.requests.len(), unit) {
        socl_net::effective_threads()
    } else {
        1
    };
    let outcomes = socl_net::par::par_map_with(&scenario.requests, threads, |req| {
        optimal_route(
            req,
            placement,
            &scenario.net,
            &scenario.ap,
            &scenario.catalog,
        )
    });
    let mut per_request = Vec::with_capacity(scenario.users());
    let mut routes = Vec::with_capacity(scenario.users());
    let mut fallbacks = 0;
    for outcome in outcomes {
        match outcome {
            RouteOutcome::Edge { route, breakdown } => {
                per_request.push(breakdown.total());
                routes.push(Some(route));
            }
            RouteOutcome::CloudFallback => {
                per_request.push(scenario.cloud_penalty);
                routes.push(None);
                fallbacks += 1;
            }
        }
    }
    let total_latency: f64 = per_request.iter().sum();
    let cost = placement.deployment_cost(&scenario.catalog);
    let objective =
        scenario.lambda * cost + (1.0 - scenario.lambda) * scenario.latency_scale * total_latency;
    Evaluation {
        cost,
        total_latency,
        per_request,
        cloud_fallbacks: fallbacks,
        assignment: Assignment::new(routes),
        objective,
    }
}

/// Violations of the QoS and capacity constraints (Definitions 2/4).
#[derive(Debug, Clone, Default)]
pub struct ConstraintReport {
    /// Requests whose `𝒟_h > 𝒟_h^max` (index, latency, bound).
    pub latency_violations: Vec<(usize, f64, f64)>,
    /// Budget overshoot `Σ𝒦_k − 𝒦^max` if positive.
    pub budget_overshoot: Option<f64>,
    /// Per-node storage overshoots.
    pub storage_violations: Vec<(NodeId, f64)>,
}

impl ConstraintReport {
    /// True when every constraint holds.
    pub fn is_feasible(&self) -> bool {
        self.latency_violations.is_empty()
            && self.budget_overshoot.is_none()
            && self.storage_violations.is_empty()
    }
}

/// Check Eqs. 4–6 for `placement` on `scenario`, reusing `eval` if already
/// computed (pass `None` to evaluate internally).
pub fn check_constraints(
    scenario: &Scenario,
    placement: &Placement,
    eval: Option<&Evaluation>,
) -> ConstraintReport {
    let owned;
    let eval = match eval {
        Some(e) => e,
        None => {
            owned = evaluate(scenario, placement);
            &owned
        }
    };
    let mut report = ConstraintReport::default();
    for (h, (&d, req)) in eval.per_request.iter().zip(&scenario.requests).enumerate() {
        if d > req.d_max + 1e-9 {
            report.latency_violations.push((h, d, req.d_max));
        }
    }
    let over = eval.cost - scenario.budget;
    if over > 1e-9 {
        report.budget_overshoot = Some(over);
    }
    report.storage_violations = placement.storage_violations(&scenario.catalog, &scenario.net);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn scenario() -> Scenario {
        ScenarioConfig::paper(8, 20).build(5)
    }

    #[test]
    fn empty_placement_sends_everyone_to_cloud() {
        let sc = scenario();
        let p = Placement::empty(sc.services(), sc.nodes());
        let ev = evaluate(&sc, &p);
        assert_eq!(ev.cloud_fallbacks, sc.users());
        assert_eq!(ev.cost, 0.0);
        assert!((ev.total_latency - sc.users() as f64 * sc.cloud_penalty).abs() < 1e-9);
        assert!(ev.objective > 0.0);
    }

    #[test]
    fn full_placement_minimizes_latency_maximizes_cost() {
        let sc = scenario();
        let full = Placement::full(sc.services(), sc.nodes());
        let ev_full = evaluate(&sc, &full);
        assert_eq!(ev_full.cloud_fallbacks, 0);
        assert!(ev_full.cost > 0.0);

        // Any sub-placement that still covers everything has >= latency.
        let mut sub = full.clone();
        // Remove all instances from node 0 (keep coverage via other nodes).
        for m in sc.catalog.ids() {
            sub.set(m, NodeId(0), false);
        }
        let ev_sub = evaluate(&sc, &sub);
        assert!(ev_sub.cost < ev_full.cost);
        assert!(ev_sub.total_latency >= ev_full.total_latency - 1e-9);
    }

    #[test]
    fn objective_blends_cost_and_latency_by_lambda() {
        let sc = scenario();
        let p = Placement::full(sc.services(), sc.nodes());
        let ev = evaluate(&sc, &p);
        let manual = sc.lambda * ev.cost + (1.0 - sc.lambda) * sc.latency_scale * ev.total_latency;
        assert!((ev.objective - manual).abs() < 1e-9);

        let mut sc1 = sc.clone();
        sc1.lambda = 1.0;
        let ev1 = evaluate(&sc1, &p);
        assert!((ev1.objective - ev1.cost).abs() < 1e-9);

        let mut sc0 = sc.clone();
        sc0.lambda = 0.0;
        let ev0 = evaluate(&sc0, &p);
        assert!((ev0.objective - sc0.latency_scale * ev0.total_latency).abs() < 1e-9);
    }

    #[test]
    fn constraint_report_flags_budget() {
        let sc = scenario();
        let full = Placement::full(sc.services(), sc.nodes());
        let mut tight = sc.clone();
        tight.budget = 1.0;
        let rep = check_constraints(&tight, &full, None);
        assert!(rep.budget_overshoot.is_some());
        assert!(!rep.is_feasible());
    }

    #[test]
    fn constraint_report_flags_latency() {
        let mut sc = scenario();
        for r in &mut sc.requests {
            r.d_max = 0.0; // everything violates
        }
        let p = Placement::full(sc.services(), sc.nodes());
        let ev = evaluate(&sc, &p);
        let rep = check_constraints(&sc, &p, Some(&ev));
        assert_eq!(rep.latency_violations.len(), sc.users());
    }

    #[test]
    fn feasible_placement_reports_clean() {
        let sc = scenario();
        // One instance of each requested service on its busiest node; storage
        // per node is at most ~a few units so this is storage-feasible in
        // practice for this seed.
        let mut p = Placement::empty(sc.services(), sc.nodes());
        for m in sc.requested_services() {
            let best = sc.net.node_ids().max_by_key(|&k| sc.demand(m, k)).unwrap();
            p.set(m, best, true);
        }
        let ev = evaluate(&sc, &p);
        assert_eq!(ev.cloud_fallbacks, 0);
        let rep = check_constraints(&sc, &p, Some(&ev));
        assert!(rep.latency_violations.is_empty());
    }

    #[test]
    fn stats_helpers() {
        let sc = scenario();
        let p = Placement::full(sc.services(), sc.nodes());
        let ev = evaluate(&sc, &p);
        assert!(ev.mean_latency() > 0.0);
        assert!(ev.max_latency() >= ev.mean_latency());
        assert!(ev.max_latency() <= ev.total_latency + 1e-12);
    }
}

//! Routing: choosing the serving node for every chain position.
//!
//! Given a placement `x`, the latency-optimal assignment for one request is
//! the solution of a layered shortest-path problem: layer `j` has one state
//! per node hosting `chain[j]`, transition weights are the inter-service
//! transfer delays, and terminal weights add the upload and return legs.
//! [`optimal_route`] solves it exactly by dynamic programming in
//! `O(|chain| · |V|²)`; this is the routing oracle used by the exact
//! optimizer and by evaluation.
//!
//! [`greedy_route`] is the myopic alternative (always hop to the
//! cheapest-next instance) that baselines like RP use; it is never better
//! than the DP and the gap between the two is itself an interesting
//! measurement (the paper's "conventional strategies ignore dependencies"
//! motivation).

use crate::latency::{completion_time, CompletionBreakdown};
use crate::placement::{Assignment, Placement};
use crate::request::UserRequest;
use crate::service::ServiceCatalog;
use socl_net::{AllPairs, EdgeNetwork, NodeId};

/// Result of routing one request.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteOutcome {
    /// Served from the edge along the given route with the given breakdown.
    Edge {
        route: Vec<NodeId>,
        breakdown: CompletionBreakdown,
    },
    /// Some chain service has no edge instance: the request falls back to
    /// the cloud (the objective charges [`crate::scenario::Scenario::cloud_penalty`]).
    CloudFallback,
}

impl RouteOutcome {
    /// The edge route, if any.
    pub fn route(&self) -> Option<&[NodeId]> {
        match self {
            RouteOutcome::Edge { route, .. } => Some(route),
            RouteOutcome::CloudFallback => None,
        }
    }

    /// Completion time on the edge, if edge-served.
    pub fn edge_time(&self) -> Option<f64> {
        match self {
            RouteOutcome::Edge { breakdown, .. } => Some(breakdown.total()),
            RouteOutcome::CloudFallback => None,
        }
    }
}

/// Reusable buffers for the routing DP, so per-request calls in hot loops
/// (`route_all`, the online per-slot sweep) never re-allocate the layer
/// tables (rule `A1-hot-alloc`). All four vectors are flat: entry `i`
/// describes host `hosts[i]`, and `off[j]..off[j+1]` is layer `j`'s slice.
#[derive(Debug, Clone, Default)]
pub struct RouteScratch {
    hosts: Vec<NodeId>,
    off: Vec<usize>,
    cost_s: Vec<f64>,
    back: Vec<usize>,
}

impl RouteScratch {
    /// Empty scratch; buffers grow to the workload's high-water mark on
    /// first use and are reused afterwards.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Latency-optimal route for `request` under `placement` (exact DP).
pub fn optimal_route(
    request: &UserRequest,
    placement: &Placement,
    net: &EdgeNetwork,
    ap: &AllPairs,
    catalog: &ServiceCatalog,
) -> RouteOutcome {
    let mut scratch = RouteScratch::new();
    optimal_route_with(&mut scratch, request, placement, net, ap, catalog)
}

/// [`optimal_route`] against caller-owned scratch buffers — the form hot
/// loops use so the DP tables are allocated once per worker, not once per
/// request.
pub fn optimal_route_with(
    scratch: &mut RouteScratch,
    request: &UserRequest,
    placement: &Placement,
    net: &EdgeNetwork,
    ap: &AllPairs,
    catalog: &ServiceCatalog,
) -> RouteOutcome {
    let n_layers = request.chain.len();
    if n_layers == 0 {
        return RouteOutcome::CloudFallback;
    }
    let RouteScratch {
        hosts,
        off,
        cost_s,
        back,
    } = scratch;
    hosts.clear();
    off.clear();
    cost_s.clear();
    back.clear();

    // Hosting sets per layer, flattened.
    off.push(0);
    for &m in &request.chain {
        let before = hosts.len();
        hosts.extend(placement.hosts_iter(m));
        if hosts.len() == before {
            return RouteOutcome::CloudFallback;
        }
        off.push(hosts.len());
    }

    // DP forward pass. cost_s[i] = best accumulated delay (seconds) ending
    // with chain[j] served at hosts[i], for i in layer j's slice.

    // Layer 0: upload + compute.
    for &k in &hosts[off[0]..off[1]] {
        cost_s.push(
            ap.transfer_time(request.location, k, request.r_in)
                + catalog.compute_gflop(request.chain[0]) / net.compute_gflops(k),
        );
        back.push(usize::MAX);
    }

    for j in 1..n_layers {
        let q_gflop = catalog.compute_gflop(request.chain[j]);
        let r_gb = request.edge_data[j - 1];
        let (p0, p1) = (off[j - 1], off[j]);
        for i in off[j]..off[j + 1] {
            let k = hosts[i];
            let compute_s = q_gflop / net.compute_gflops(k);
            let mut best_s = f64::INFINITY;
            let mut arg = usize::MAX;
            for p in p0..p1 {
                let c_s = cost_s[p] + ap.transfer_time(hosts[p], k, r_gb);
                if c_s < best_s {
                    best_s = c_s;
                    arg = p;
                }
            }
            cost_s.push(best_s + compute_s);
            back.push(arg);
        }
    }

    // Terminal: return leg along min-hop π*.
    let (mut best_i, mut best_total_s) = (usize::MAX, f64::INFINITY);
    for i in off[n_layers - 1]..off[n_layers] {
        let c_s = cost_s[i] + ap.return_time(hosts[i], request.location, request.r_out);
        if c_s < best_total_s {
            best_total_s = c_s;
            best_i = i;
        }
    }

    // Backtrack.
    let mut route = vec![NodeId(0); n_layers];
    let mut i = best_i;
    for j in (0..n_layers).rev() {
        route[j] = hosts[i];
        i = back[i];
    }

    let breakdown = completion_time(request, &route, net, ap, catalog);
    debug_assert!(
        (breakdown.total() - best_total_s).abs() < 1e-6,
        "DP cost {} disagrees with evaluation {}",
        best_total_s,
        breakdown.total()
    );
    RouteOutcome::Edge { route, breakdown }
}

/// Myopic routing: serve each chain position at the instance that minimizes
/// the *local* cost (transfer from the previous position + compute), ignoring
/// downstream consequences.
pub fn greedy_route(
    request: &UserRequest,
    placement: &Placement,
    net: &EdgeNetwork,
    ap: &AllPairs,
    catalog: &ServiceCatalog,
) -> RouteOutcome {
    let mut route = Vec::with_capacity(request.chain.len());
    let mut prev = request.location;
    for (j, &m) in request.chain.iter().enumerate() {
        let r_gb = if j == 0 {
            request.r_in
        } else {
            request.edge_data[j - 1]
        };
        let q_gflop = catalog.compute_gflop(m);
        // Scan hosts in ascending node-id order; strict `<` keeps the first
        // (lowest-id) host on cost ties, exactly like the old
        // `total_cmp().then(id cmp)` tuple comparison. No host at all
        // degrades to the cloud.
        let mut best_c = f64::INFINITY;
        let mut best = None;
        for k in placement.hosts_iter(m) {
            let c_s = ap.transfer_time(prev, k, r_gb) + q_gflop / net.compute_gflops(k);
            if best.is_none() || c_s < best_c {
                best_c = c_s;
                best = Some(k);
            }
        }
        let Some(best) = best else {
            return RouteOutcome::CloudFallback;
        };
        route.push(best);
        prev = best;
    }
    let breakdown = completion_time(request, &route, net, ap, catalog);
    RouteOutcome::Edge { route, breakdown }
}

/// Route every request optimally; returns the assignment (with `None` for
/// cloud fallbacks).
///
/// Requests are routed independently and fan out over the thread pool when
/// the workload warrants it; results keep request order, so the assignment is
/// identical for any thread count.
pub fn route_all(
    requests: &[UserRequest],
    placement: &Placement,
    net: &EdgeNetwork,
    ap: &AllPairs,
    catalog: &ServiceCatalog,
) -> Assignment {
    let unit = net.node_count() * net.node_count() * 8;
    let threads = if socl_net::parallel_worthwhile(requests.len(), unit) {
        socl_net::effective_threads()
    } else {
        1
    };
    Assignment::new(socl_net::par::par_map_scratch_with(
        requests,
        threads,
        RouteScratch::new,
        |scratch, r| {
            optimal_route_with(scratch, r, placement, net, ap, catalog)
                .route()
                .map(<[NodeId]>::to_vec)
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::UserId;
    use crate::service::{Microservice, ServiceId};
    use socl_net::{EdgeServer, LinkParams};

    /// Diamond with a trap: the greedy-first hop looks cheap but strands the
    /// request far from the only host of the second service.
    ///
    /// v0 (user) — v1 (fast m0 host, dead end), v0 — v2 — v3; m0 on {v1,v2},
    /// m1 only on v3.
    fn trap() -> (
        EdgeNetwork,
        AllPairs,
        ServiceCatalog,
        Placement,
        UserRequest,
    ) {
        let mut net = EdgeNetwork::new();
        for c in [10.0, 100.0, 10.0, 10.0] {
            net.push_server(EdgeServer::new(c, 8.0));
        }
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(80.0));
        net.add_link(NodeId(0), NodeId(2), LinkParams::from_rate(40.0));
        net.add_link(NodeId(2), NodeId(3), LinkParams::from_rate(80.0));
        net.add_link(NodeId(1), NodeId(3), LinkParams::from_rate(0.5)); // trap exit: very slow
        let ap = AllPairs::build(&net);
        let cat = ServiceCatalog::from_services(vec![
            Microservice::new(1.0, 1.0, 1.0),
            Microservice::new(1.0, 1.0, 1.0),
        ]);
        let mut p = Placement::empty(2, 4);
        p.set(ServiceId(0), NodeId(1), true);
        p.set(ServiceId(0), NodeId(2), true);
        p.set(ServiceId(1), NodeId(3), true);
        let req = UserRequest::new(
            UserId(0),
            NodeId(0),
            vec![ServiceId(0), ServiceId(1)],
            vec![4.0],
            1.0,
            0.1,
            100.0,
        );
        (net, ap, cat, p, req)
    }

    #[test]
    fn dp_avoids_the_greedy_trap() {
        let (net, ap, cat, p, req) = trap();
        let opt = optimal_route(&req, &p, &net, &ap, &cat);
        let grd = greedy_route(&req, &p, &net, &ap, &cat);
        let (o, g) = (opt.edge_time().unwrap(), grd.edge_time().unwrap());
        assert!(o < g, "optimal {o} should beat greedy {g}");
        // DP routes through v2 despite v1's faster CPU.
        assert_eq!(opt.route().unwrap(), &[NodeId(2), NodeId(3)]);
        assert_eq!(grd.route().unwrap(), &[NodeId(1), NodeId(3)]);
    }

    #[test]
    fn dp_is_never_worse_than_greedy() {
        let (net, ap, cat, p, req) = trap();
        for loc in net.node_ids() {
            let mut r = req.clone();
            r.location = loc;
            let o = optimal_route(&r, &p, &net, &ap, &cat).edge_time().unwrap();
            let g = greedy_route(&r, &p, &net, &ap, &cat).edge_time().unwrap();
            assert!(o <= g + 1e-12);
        }
    }

    #[test]
    fn missing_instance_falls_back_to_cloud() {
        let (net, ap, cat, mut p, req) = trap();
        p.set(ServiceId(1), NodeId(3), false);
        assert_eq!(
            optimal_route(&req, &p, &net, &ap, &cat),
            RouteOutcome::CloudFallback
        );
        assert_eq!(
            greedy_route(&req, &p, &net, &ap, &cat),
            RouteOutcome::CloudFallback
        );
    }

    #[test]
    fn route_all_respects_eq10() {
        let (net, ap, cat, p, req) = trap();
        let reqs = vec![req.clone(), {
            let mut r = req;
            r.id = UserId(1);
            r.location = NodeId(3);
            r
        }];
        let asg = route_all(&reqs, &p, &net, &ap, &cat);
        assert_eq!(asg.len(), 2);
        assert_eq!(asg.cloud_fallbacks(), 0);
        assert!(asg.consistent_with(&p, &reqs));
    }

    #[test]
    fn dp_matches_brute_force_enumeration() {
        let (net, ap, cat, p, req) = trap();
        // Enumerate all host combinations.
        let hosts0 = p.hosts_of(ServiceId(0));
        let hosts1 = p.hosts_of(ServiceId(1));
        let mut best = f64::INFINITY;
        for &a in &hosts0 {
            for &b in &hosts1 {
                let t = completion_time(&req, &[a, b], &net, &ap, &cat).total();
                best = best.min(t);
            }
        }
        let dp = optimal_route(&req, &p, &net, &ap, &cat)
            .edge_time()
            .unwrap();
        assert!((dp - best).abs() < 1e-12);
    }

    #[test]
    fn single_service_chain_picks_best_host() {
        let (net, ap, cat, p, _) = trap();
        let req = UserRequest::new(
            UserId(0),
            NodeId(0),
            vec![ServiceId(0)],
            vec![],
            1.0,
            0.1,
            10.0,
        );
        let out = optimal_route(&req, &p, &net, &ap, &cat);
        // v1: upload 1/80 + q/c 1/100 + return 0.1·(1/80) ≈ 0.0237
        // v2: upload 1/40 + 1/10 + 0.1/40 = 0.1275 → v1 wins.
        assert_eq!(out.route().unwrap(), &[NodeId(1)]);
    }
}

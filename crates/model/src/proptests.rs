//! Property-based tests spanning the model crate.

use crate::objective::evaluate;
use crate::placement::Placement;
use crate::routing::{greedy_route, optimal_route, RouteOutcome};
use crate::scenario::{Scenario, ScenarioConfig};
use crate::service::ServiceId;
use proptest::prelude::*;
use socl_net::NodeId;

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (3usize..=10, 5usize..=25, any::<u64>())
        .prop_map(|(nodes, users, seed)| ScenarioConfig::paper(nodes, users).build(seed))
}

/// Random placement with roughly `density` of all (service, node) pairs set,
/// patched to cover all requested services.
fn random_covering_placement(sc: &Scenario, density: f64, seed: u64) -> Placement {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Placement::empty(sc.services(), sc.nodes());
    for i in 0..sc.services() {
        for k in 0..sc.nodes() {
            if rng.gen::<f64>() < density {
                p.set(ServiceId(i as u32), NodeId(k as u32), true);
            }
        }
    }
    for m in sc.requested_services() {
        if p.instance_count(m) == 0 {
            let k = rng.gen_range(0..sc.nodes());
            p.set(m, NodeId(k as u32), true);
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DP routing is never worse than greedy routing on any scenario.
    #[test]
    fn dp_dominates_greedy(sc in arb_scenario(), density in 0.2f64..0.9, pseed in any::<u64>()) {
        let p = random_covering_placement(&sc, density, pseed);
        for req in &sc.requests {
            let o = optimal_route(req, &p, &sc.net, &sc.ap, &sc.catalog);
            let g = greedy_route(req, &p, &sc.net, &sc.ap, &sc.catalog);
            match (&o, &g) {
                (RouteOutcome::Edge { breakdown: ob, .. }, RouteOutcome::Edge { breakdown: gb, .. }) => {
                    prop_assert!(ob.total() <= gb.total() + 1e-9,
                        "{}: dp {} > greedy {}", req.id, ob.total(), gb.total());
                }
                (RouteOutcome::CloudFallback, RouteOutcome::CloudFallback) => {}
                _ => prop_assert!(false, "dp and greedy disagree on feasibility"),
            }
        }
    }

    /// Adding instances never increases any request's optimal latency
    /// (monotonicity of the routing relaxation).
    #[test]
    fn more_instances_never_hurt_latency(sc in arb_scenario(), pseed in any::<u64>()) {
        let small = random_covering_placement(&sc, 0.3, pseed);
        let mut big = small.clone();
        // Add instances everywhere for service 0 and on node 0 for all.
        for k in 0..sc.nodes() {
            big.set(ServiceId(0), NodeId(k as u32), true);
        }
        for i in 0..sc.services() {
            big.set(ServiceId(i as u32), NodeId(0), true);
        }
        let ev_small = evaluate(&sc, &small);
        let ev_big = evaluate(&sc, &big);
        for (a, b) in ev_small.per_request.iter().zip(&ev_big.per_request) {
            prop_assert!(b <= &(a + 1e-9), "latency rose after adding instances");
        }
        prop_assert!(ev_big.cost >= ev_small.cost);
    }

    /// Routing respects Eq. 9/10: exactly one node per chain position, every
    /// node hosts the service it serves.
    #[test]
    fn routing_respects_decision_constraints(sc in arb_scenario(), pseed in any::<u64>()) {
        let p = random_covering_placement(&sc, 0.4, pseed);
        let ev = evaluate(&sc, &p);
        prop_assert!(ev.assignment.consistent_with(&p, &sc.requests));
        for (h, req) in sc.requests.iter().enumerate() {
            if let Some(route) = ev.assignment.route(h) {
                prop_assert_eq!(route.len(), req.chain.len());
            }
        }
    }

    /// The objective is exactly λ·cost + (1-λ)·scale·latency.
    #[test]
    fn objective_identity(sc in arb_scenario(), density in 0.2f64..0.9, pseed in any::<u64>()) {
        let p = random_covering_placement(&sc, density, pseed);
        let ev = evaluate(&sc, &p);
        let manual = sc.lambda * ev.cost
            + (1.0 - sc.lambda) * sc.latency_scale * ev.total_latency;
        prop_assert!((ev.objective - manual).abs() < 1e-6);
        prop_assert!((ev.per_request.iter().sum::<f64>() - ev.total_latency).abs() < 1e-6);
    }

    /// Evaluation is deterministic.
    #[test]
    fn evaluation_deterministic(sc in arb_scenario(), pseed in any::<u64>()) {
        let p = random_covering_placement(&sc, 0.5, pseed);
        let a = evaluate(&sc, &p);
        let b = evaluate(&sc, &p);
        prop_assert_eq!(a.objective, b.objective);
        prop_assert_eq!(a.per_request, b.per_request);
    }

    /// Full placement gives per-request latencies that lower-bound every
    /// covering placement's (the full placement is the latency-optimal
    /// relaxation).
    #[test]
    fn full_placement_is_latency_lower_bound(sc in arb_scenario(), pseed in any::<u64>()) {
        let full = Placement::full(sc.services(), sc.nodes());
        let any = random_covering_placement(&sc, 0.35, pseed);
        let ev_full = evaluate(&sc, &full);
        let ev_any = evaluate(&sc, &any);
        for (f, a) in ev_full.per_request.iter().zip(&ev_any.per_request) {
            prop_assert!(f <= &(a + 1e-9));
        }
    }
}

/// Small routing instance for exhaustive oracle checks: a connected random
/// topology with ≤ 6 nodes, a chain of ≤ 5 distinct services, and a random
/// covering placement.
fn small_instance(
    nodes: usize,
    chain_len: usize,
    seed: u64,
) -> (Scenario, Placement, crate::request::UserRequest) {
    use crate::request::{UserId, UserRequest};
    use crate::service::{Microservice, ServiceCatalog};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use socl_net::TopologyConfig;

    let mut rng = StdRng::seed_from_u64(seed);
    let net = TopologyConfig::paper(nodes).build(seed);
    let catalog = ServiceCatalog::from_services(
        (0..chain_len)
            .map(|_| {
                Microservice::new(
                    rng.gen_range(0.5..3.0),
                    rng.gen_range(0.5..2.0),
                    rng.gen_range(1.0..3.0),
                )
            })
            .collect(),
    );
    let chain: Vec<ServiceId> = (0..chain_len as u32).map(ServiceId).collect();
    let edge_data: Vec<f64> = (1..chain_len).map(|_| rng.gen_range(0.1..4.0)).collect();
    let req = UserRequest::new(
        UserId(0),
        NodeId(rng.gen_range(0..nodes) as u32),
        chain,
        edge_data,
        rng.gen_range(0.1..4.0),
        rng.gen_range(0.05..1.0),
        1e9,
    );
    let mut placement = Placement::empty(chain_len, nodes);
    for i in 0..chain_len {
        for k in 0..nodes {
            if rng.gen::<f64>() < 0.55 {
                placement.set(ServiceId(i as u32), NodeId(k as u32), true);
            }
        }
        if placement.instance_count(ServiceId(i as u32)) == 0 {
            placement.set(
                ServiceId(i as u32),
                NodeId(rng.gen_range(0..nodes) as u32),
                true,
            );
        }
    }
    let scenario = ScenarioConfig::paper(nodes, 1).assemble(net, catalog, vec![req.clone()]);
    (scenario, placement, req)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Brute-force oracle: on small instances, enumerating every assignment
    /// `Y` (one host per chain position) exhaustively must not find anything
    /// better than the layered DP — and the DP's claimed cost must be
    /// realized by its own route.
    #[test]
    fn dp_is_latency_optimal_against_exhaustive_enumeration(
        nodes in 2usize..=6,
        chain_len in 1usize..=5,
        seed in any::<u64>(),
    ) {
        use crate::latency::completion_time;

        let (sc, placement, req) = small_instance(nodes, chain_len, seed);
        let layers: Vec<Vec<NodeId>> = req.chain.iter().map(|&m| placement.hosts_of(m)).collect();
        prop_assert!(layers.iter().all(|l| !l.is_empty()));

        let out = optimal_route(&req, &placement, &sc.net, &sc.ap, &sc.catalog);
        let RouteOutcome::Edge { route, breakdown } = out else {
            panic!("covering placement must route on the edge");
        };
        let dp_cost = breakdown.total();

        // Odometer over the full assignment space (≤ 6^5 combinations).
        let mut idx = vec![0usize; layers.len()];
        let mut best = f64::INFINITY;
        let mut best_route = Vec::new();
        loop {
            let candidate: Vec<NodeId> =
                idx.iter().zip(&layers).map(|(&i, l)| l[i]).collect();
            let t = completion_time(&req, &candidate, &sc.net, &sc.ap, &sc.catalog).total();
            if t < best {
                best = t;
                best_route = candidate;
            }
            let mut j = 0;
            loop {
                if j == layers.len() {
                    break;
                }
                idx[j] += 1;
                if idx[j] < layers[j].len() {
                    break;
                }
                idx[j] = 0;
                j += 1;
            }
            if j == layers.len() {
                break;
            }
        }

        prop_assert!(
            (dp_cost - best).abs() < 1e-9,
            "DP {dp_cost} vs exhaustive {best} (dp route {route:?}, best {best_route:?})"
        );
        // The DP's route itself achieves the optimum.
        let realized = completion_time(&req, &route, &sc.net, &sc.ap, &sc.catalog).total();
        prop_assert!((realized - best).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Parallel chain evaluation is bit-identical to serial: same objective
    /// bits, `total_cmp`-equal per-request latencies, identical routes. The
    /// scenario is sized so the fan-out threshold genuinely engages.
    #[test]
    fn parallel_evaluation_identical_to_serial(seed in any::<u64>(), pseed in any::<u64>()) {
        let sc = ScenarioConfig::paper(30, 120).build(seed);
        let p = random_covering_placement(&sc, 0.4, pseed);
        socl_net::set_threads(1);
        let serial = evaluate(&sc, &p);
        socl_net::set_threads(4);
        let parallel = evaluate(&sc, &p);
        socl_net::set_threads(0);
        prop_assert_eq!(serial.objective.to_bits(), parallel.objective.to_bits());
        prop_assert_eq!(serial.cost.to_bits(), parallel.cost.to_bits());
        prop_assert_eq!(serial.total_latency.to_bits(), parallel.total_latency.to_bits());
        prop_assert_eq!(serial.cloud_fallbacks, parallel.cloud_fallbacks);
        prop_assert_eq!(serial.per_request.len(), parallel.per_request.len());
        for (a, b) in serial.per_request.iter().zip(&parallel.per_request) {
            prop_assert!(a.total_cmp(b) == std::cmp::Ordering::Equal);
        }
        for h in 0..sc.requests.len() {
            prop_assert_eq!(serial.assignment.route(h), parallel.assignment.route(h));
        }
    }
}

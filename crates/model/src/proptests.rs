//! Property-based tests spanning the model crate.

use crate::objective::evaluate;
use crate::placement::Placement;
use crate::routing::{greedy_route, optimal_route, RouteOutcome};
use crate::scenario::{Scenario, ScenarioConfig};
use crate::service::ServiceId;
use proptest::prelude::*;
use socl_net::NodeId;

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (3usize..=10, 5usize..=25, any::<u64>())
        .prop_map(|(nodes, users, seed)| ScenarioConfig::paper(nodes, users).build(seed))
}

/// Random placement with roughly `density` of all (service, node) pairs set,
/// patched to cover all requested services.
fn random_covering_placement(sc: &Scenario, density: f64, seed: u64) -> Placement {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Placement::empty(sc.services(), sc.nodes());
    for i in 0..sc.services() {
        for k in 0..sc.nodes() {
            if rng.gen::<f64>() < density {
                p.set(ServiceId(i as u32), NodeId(k as u32), true);
            }
        }
    }
    for m in sc.requested_services() {
        if p.instance_count(m) == 0 {
            let k = rng.gen_range(0..sc.nodes());
            p.set(m, NodeId(k as u32), true);
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DP routing is never worse than greedy routing on any scenario.
    #[test]
    fn dp_dominates_greedy(sc in arb_scenario(), density in 0.2f64..0.9, pseed in any::<u64>()) {
        let p = random_covering_placement(&sc, density, pseed);
        for req in &sc.requests {
            let o = optimal_route(req, &p, &sc.net, &sc.ap, &sc.catalog);
            let g = greedy_route(req, &p, &sc.net, &sc.ap, &sc.catalog);
            match (&o, &g) {
                (RouteOutcome::Edge { breakdown: ob, .. }, RouteOutcome::Edge { breakdown: gb, .. }) => {
                    prop_assert!(ob.total() <= gb.total() + 1e-9,
                        "{}: dp {} > greedy {}", req.id, ob.total(), gb.total());
                }
                (RouteOutcome::CloudFallback, RouteOutcome::CloudFallback) => {}
                _ => prop_assert!(false, "dp and greedy disagree on feasibility"),
            }
        }
    }

    /// Adding instances never increases any request's optimal latency
    /// (monotonicity of the routing relaxation).
    #[test]
    fn more_instances_never_hurt_latency(sc in arb_scenario(), pseed in any::<u64>()) {
        let small = random_covering_placement(&sc, 0.3, pseed);
        let mut big = small.clone();
        // Add instances everywhere for service 0 and on node 0 for all.
        for k in 0..sc.nodes() {
            big.set(ServiceId(0), NodeId(k as u32), true);
        }
        for i in 0..sc.services() {
            big.set(ServiceId(i as u32), NodeId(0), true);
        }
        let ev_small = evaluate(&sc, &small);
        let ev_big = evaluate(&sc, &big);
        for (a, b) in ev_small.per_request.iter().zip(&ev_big.per_request) {
            prop_assert!(b <= &(a + 1e-9), "latency rose after adding instances");
        }
        prop_assert!(ev_big.cost >= ev_small.cost);
    }

    /// Routing respects Eq. 9/10: exactly one node per chain position, every
    /// node hosts the service it serves.
    #[test]
    fn routing_respects_decision_constraints(sc in arb_scenario(), pseed in any::<u64>()) {
        let p = random_covering_placement(&sc, 0.4, pseed);
        let ev = evaluate(&sc, &p);
        prop_assert!(ev.assignment.consistent_with(&p, &sc.requests));
        for (h, req) in sc.requests.iter().enumerate() {
            if let Some(route) = ev.assignment.route(h) {
                prop_assert_eq!(route.len(), req.chain.len());
            }
        }
    }

    /// The objective is exactly λ·cost + (1-λ)·scale·latency.
    #[test]
    fn objective_identity(sc in arb_scenario(), density in 0.2f64..0.9, pseed in any::<u64>()) {
        let p = random_covering_placement(&sc, density, pseed);
        let ev = evaluate(&sc, &p);
        let manual = sc.lambda * ev.cost
            + (1.0 - sc.lambda) * sc.latency_scale * ev.total_latency;
        prop_assert!((ev.objective - manual).abs() < 1e-6);
        prop_assert!((ev.per_request.iter().sum::<f64>() - ev.total_latency).abs() < 1e-6);
    }

    /// Evaluation is deterministic.
    #[test]
    fn evaluation_deterministic(sc in arb_scenario(), pseed in any::<u64>()) {
        let p = random_covering_placement(&sc, 0.5, pseed);
        let a = evaluate(&sc, &p);
        let b = evaluate(&sc, &p);
        prop_assert_eq!(a.objective, b.objective);
        prop_assert_eq!(a.per_request, b.per_request);
    }

    /// Full placement gives per-request latencies that lower-bound every
    /// covering placement's (the full placement is the latency-optimal
    /// relaxation).
    #[test]
    fn full_placement_is_latency_lower_bound(sc in arb_scenario(), pseed in any::<u64>()) {
        let full = Placement::full(sc.services(), sc.nodes());
        let any = random_covering_placement(&sc, 0.35, pseed);
        let ev_full = evaluate(&sc, &full);
        let ev_any = evaluate(&sc, &any);
        for (f, a) in ev_full.per_request.iter().zip(&ev_any.per_request) {
            prop_assert!(f <= &(a + 1e-9));
        }
    }
}

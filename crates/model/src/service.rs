//! Microservices `M = {m_i}` and the service catalog.

use serde::{Deserialize, Serialize};

/// Dense identifier of a microservice (`m_i` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServiceId(pub u32);

impl ServiceId {
    /// Index into per-service vectors.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ServiceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// One microservice `m_i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Microservice {
    /// Human-readable name (from the dataset; synthetic services get `m<i>`).
    pub name: String,
    /// Per-instance deployment cost `κ(m_i)` (abstract cost units).
    pub deploy_cost: f64,
    /// Storage footprint `φ(m_i)` (storage units, counted against `Φ(v_k)`).
    pub storage: f64,
    /// Compute requirement `q(m_i)` in GFLOP per invocation
    /// (paper: sampled from [1, 3] GFLOPs).
    pub compute_gflop: f64,
}

impl Microservice {
    /// Anonymous microservice with the given parameters.
    pub fn new(deploy_cost: f64, storage: f64, compute_gflop: f64) -> Self {
        Self {
            name: String::new(),
            deploy_cost,
            storage,
            compute_gflop,
        }
    }

    /// Same, with a name.
    pub fn named(
        name: impl Into<String>,
        deploy_cost: f64,
        storage: f64,
        compute_gflop: f64,
    ) -> Self {
        Self {
            name: name.into(),
            deploy_cost,
            storage,
            compute_gflop,
        }
    }
}

/// The set `M` of all microservices in a scenario.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServiceCatalog {
    services: Vec<Microservice>,
}

impl ServiceCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Catalog from a pre-built list.
    pub fn from_services(services: Vec<Microservice>) -> Self {
        Self { services }
    }

    /// Add a microservice, returning its id.
    pub fn push(&mut self, service: Microservice) -> ServiceId {
        let id = ServiceId(self.services.len() as u32);
        self.services.push(service);
        id
    }

    /// Number of microservices `|M|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// True when the catalog is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Iterator over all service ids.
    pub fn ids(&self) -> impl Iterator<Item = ServiceId> + '_ {
        (0..self.services.len() as u32).map(ServiceId)
    }

    /// The record for `m`.
    #[inline]
    pub fn get(&self, m: ServiceId) -> &Microservice {
        &self.services[m.idx()]
    }

    /// Deployment cost `κ(m_i)`.
    #[inline]
    pub fn deploy_cost(&self, m: ServiceId) -> f64 {
        self.services[m.idx()].deploy_cost
    }

    /// Storage footprint `φ(m_i)`.
    #[inline]
    pub fn storage(&self, m: ServiceId) -> f64 {
        self.services[m.idx()].storage
    }

    /// Compute requirement `q(m_i)` (GFLOP).
    #[inline]
    pub fn compute_gflop(&self, m: ServiceId) -> f64 {
        self.services[m.idx()].compute_gflop
    }

    /// Sum of `κ(m_j)` over all services except `m` — the paper's
    /// `Σ_{m_j ∈ M \ {m_i}} κ(m_j)` used by the budget bound `𝒦^u(m_i)`.
    pub fn cost_of_others(&self, m: ServiceId) -> f64 {
        self.services
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != m.idx())
            .map(|(_, s)| s.deploy_cost)
            .sum()
    }

    /// Total cost of one instance of every service.
    pub fn total_single_cost(&self) -> f64 {
        self.services.iter().map(|s| s.deploy_cost).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog3() -> ServiceCatalog {
        ServiceCatalog::from_services(vec![
            Microservice::named("a", 100.0, 1.0, 2.0),
            Microservice::named("b", 200.0, 1.5, 1.0),
            Microservice::named("c", 300.0, 2.0, 3.0),
        ])
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut cat = ServiceCatalog::new();
        assert_eq!(cat.push(Microservice::new(1.0, 1.0, 1.0)), ServiceId(0));
        assert_eq!(cat.push(Microservice::new(1.0, 1.0, 1.0)), ServiceId(1));
        assert_eq!(cat.len(), 2);
    }

    #[test]
    fn accessors_return_fields() {
        let cat = catalog3();
        assert_eq!(cat.deploy_cost(ServiceId(1)), 200.0);
        assert_eq!(cat.storage(ServiceId(2)), 2.0);
        assert_eq!(cat.compute_gflop(ServiceId(0)), 2.0);
        assert_eq!(cat.get(ServiceId(0)).name, "a");
    }

    #[test]
    fn cost_of_others_excludes_self() {
        let cat = catalog3();
        assert_eq!(cat.cost_of_others(ServiceId(0)), 500.0);
        assert_eq!(cat.cost_of_others(ServiceId(2)), 300.0);
        assert_eq!(cat.total_single_cost(), 600.0);
    }

    #[test]
    fn ids_iterate_in_order() {
        let cat = catalog3();
        let ids: Vec<ServiceId> = cat.ids().collect();
        assert_eq!(ids, vec![ServiceId(0), ServiceId(1), ServiceId(2)]);
    }
}

//! Deterministic, serde-free binary codec for crash-recovery state.
//!
//! Checkpoints and decision-log records (DESIGN.md §8) must be bit-stable
//! across runs, platforms, and rebuilds, which rules out anything that
//! depends on a serializer's field ordering, float formatting, or hash-map
//! iteration. This module provides the primitive layer: a little-endian
//! [`BinWriter`]/[`BinReader`] pair where every `f64` crosses as its exact
//! IEEE-754 bit pattern, plus the [`crc32`] (IEEE, reflected) used both for
//! whole-checkpoint integrity and per-record torn-tail detection.
//!
//! Decoding never panics: every read is bounds-checked and surfaces a
//! [`CodecError`], because the primary consumer is crash recovery — the one
//! code path that must survive arbitrarily truncated or corrupted input.

use std::fmt;

/// Structured decode failure. Recovery code matches on this to distinguish
/// a torn tail (truncation) from real corruption (checksum mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before a fixed-width field or declared payload.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// Leading magic bytes did not match the expected format tag.
    BadMagic {
        /// Magic found in the input.
        found: u32,
        /// Magic the decoder expected.
        expected: u32,
    },
    /// Format version not understood by this build.
    BadVersion(u32),
    /// CRC-32 over the payload did not match the stored digest.
    BadChecksum {
        /// Digest stored in the input.
        stored: u32,
        /// Digest computed over the payload.
        computed: u32,
    },
    /// Structurally valid bytes encoding an impossible value.
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, have } => {
                write!(f, "truncated input: needed {needed} bytes, have {have}")
            }
            CodecError::BadMagic { found, expected } => {
                write!(f, "bad magic {found:#010x} (expected {expected:#010x})")
            }
            CodecError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            CodecError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), bitwise —
/// no lookup table, so the digest is trivially auditable and the code has
/// no initialization-order or table-corruption hazards.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Little-endian binary writer over a growable buffer.
#[derive(Debug, Default, Clone)]
pub struct BinWriter {
    buf: Vec<u8>,
}

impl BinWriter {
    /// Empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the encoded bytes (e.g. to checksum before appending it).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u128`, little-endian (RNG word positions).
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` so the encoding is identical on 32- and
    /// 64-bit hosts.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` as its exact IEEE-754 bit pattern (no formatting,
    /// no rounding — `NaN` payloads and `-0.0` round-trip untouched).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `bool` as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append raw bytes with no length prefix (for fixed-width fields the
    /// reader knows to expect, e.g. a 32-byte RNG seed).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed `u32` sequence.
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_u32(x);
        }
    }

    /// Append a length-prefixed `f64` sequence (bit patterns).
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_f64(x);
        }
    }

    /// Append a length-prefixed `bool` sequence.
    pub fn put_bool_slice(&mut self, v: &[bool]) {
        self.put_usize(v.len());
        for &x in v {
            self.put_bool(x);
        }
    }
}

/// Bounds-checked little-endian reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BinReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Sequences read back from a checkpoint are length-prefixed by the writer;
/// cap how many elements a single prefix may claim so a corrupted length
/// cannot drive an allocation of gigabytes before the bounds check trips.
const MAX_SEQ_LEN: usize = 1 << 24;

impl<'a> BinReader<'a> {
    /// Reader positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// True when every byte has been consumed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume exactly `n` bytes, returning the slice.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(CodecError::Malformed("length overflow"))?;
        let slice = self.buf.get(self.pos..end).ok_or(CodecError::Truncated {
            needed: n,
            have: self.remaining(),
        })?;
        self.pos = end;
        Ok(slice)
    }

    /// Read one byte.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] at end of input.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        let s = self.take(1)?;
        s.first()
            .copied()
            .ok_or(CodecError::Malformed("empty take"))
    }

    /// Read a little-endian `u32`.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] when fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let s = self.take(4)?;
        let arr: [u8; 4] = s
            .try_into()
            .map_err(|_| CodecError::Malformed("u32 width"))?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Read a little-endian `u64`.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] when fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let s = self.take(8)?;
        let arr: [u8; 8] = s
            .try_into()
            .map_err(|_| CodecError::Malformed("u64 width"))?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Read a little-endian `u128`.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] when fewer than 16 bytes remain.
    pub fn get_u128(&mut self) -> Result<u128, CodecError> {
        let s = self.take(16)?;
        let arr: [u8; 16] = s
            .try_into()
            .map_err(|_| CodecError::Malformed("u128 width"))?;
        Ok(u128::from_le_bytes(arr))
    }

    /// Read a `usize` (stored as `u64`).
    ///
    /// # Errors
    /// [`CodecError::Truncated`] on short input; [`CodecError::Malformed`]
    /// when the stored value does not fit this host's `usize`.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError::Malformed("usize out of range"))
    }

    /// Read an `f64` from its stored bit pattern.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] when fewer than 8 bytes remain.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a `bool` (rejecting any byte other than 0/1, which would signal
    /// a misframed record rather than a legitimate value).
    ///
    /// # Errors
    /// [`CodecError::Truncated`] at end of input; [`CodecError::Malformed`]
    /// for bytes other than 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed("bool byte")),
        }
    }

    /// Read a length-prefixed byte string.
    ///
    /// # Errors
    /// Truncation or an implausible length prefix.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.seq_len()?;
        self.take(n)
    }

    /// Read a length-prefixed `u32` sequence.
    ///
    /// # Errors
    /// Truncation or an implausible length prefix.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, CodecError> {
        let n = self.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_u32()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed `f64` sequence.
    ///
    /// # Errors
    /// Truncation or an implausible length prefix.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed `bool` sequence.
    ///
    /// # Errors
    /// Truncation, an implausible length prefix, or a non-0/1 byte.
    pub fn get_bool_vec(&mut self) -> Result<Vec<bool>, CodecError> {
        let n = self.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_bool()?);
        }
        Ok(out)
    }

    fn seq_len(&mut self) -> Result<usize, CodecError> {
        let n = self.get_usize()?;
        if n > MAX_SEQ_LEN {
            return Err(CodecError::Malformed("sequence length implausible"));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_bit_exactly() {
        let mut w = BinWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_u128(u128::MAX >> 3);
        w.put_usize(123_456);
        w.put_f64(-0.0);
        w.put_f64(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN with payload
        w.put_bool(true);
        w.put_bytes(b"checkpoint");
        w.put_u32_slice(&[1, 2, 3]);
        w.put_f64_slice(&[1.5, -2.25]);
        w.put_bool_slice(&[true, false, true]);

        let bytes = w.into_bytes();
        let mut r = BinReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_u128().unwrap(), u128::MAX >> 3);
        assert_eq!(r.get_usize().unwrap(), 123_456);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), 0x7FF8_0000_0000_1234);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_bytes().unwrap(), b"checkpoint");
        assert_eq!(r.get_u32_vec().unwrap(), vec![1, 2, 3]);
        let fs = r.get_f64_vec().unwrap();
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[0].to_bits(), 1.5f64.to_bits());
        assert_eq!(fs[1].to_bits(), (-2.25f64).to_bits());
        assert_eq!(r.get_bool_vec().unwrap(), vec![true, false, true]);
        assert!(r.is_done());
    }

    #[test]
    fn truncation_is_reported_not_panicked() {
        let mut w = BinWriter::new();
        w.put_u64(7);
        let bytes = w.into_bytes();
        let mut r = BinReader::new(&bytes[..5]);
        match r.get_u64() {
            Err(CodecError::Truncated { needed: 8, have: 5 }) => {}
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn bool_rejects_garbage_bytes() {
        let mut r = BinReader::new(&[2]);
        assert_eq!(r.get_bool(), Err(CodecError::Malformed("bool byte")));
    }

    #[test]
    fn implausible_sequence_length_is_rejected() {
        let mut w = BinWriter::new();
        w.put_usize(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = BinReader::new(&bytes);
        assert!(matches!(r.get_u32_vec(), Err(CodecError::Malformed(_))));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // A single flipped bit changes the digest.
        assert_ne!(crc32(b"checkpoint"), crc32(b"chedkpoint"));
    }

    #[test]
    fn encoding_is_deterministic() {
        let encode = || {
            let mut w = BinWriter::new();
            w.put_f64(std::f64::consts::PI);
            w.put_u32_slice(&[9, 8, 7]);
            w.into_bytes()
        };
        assert_eq!(encode(), encode());
        assert_eq!(crc32(&encode()), crc32(&encode()));
    }
}

//! # socl-model — workload, cost and completion-time models for SoCL
//!
//! This crate implements Section III of the paper:
//!
//! * microservices `M = {m_i}` with deployment cost `κ(m_i)`, storage
//!   footprint `φ(m_i)` and compute requirement `q(m_i)` ([`service`]),
//! * user requests `u_h = {M_h, E_h}` modeled as directed chains of
//!   microservices with per-edge data flows ([`request`]),
//! * the deployment-cost model `𝒦_k = Σ κ(m_i)·x(i,k)` (Eq. 1, [`placement`]),
//! * the completion-time model `𝒟_h` (Eq. 2/7, [`latency`]),
//! * the joint objective `λ Σ 𝒦_k + (1-λ) Σ 𝒟_h` and its constraints
//!   (Eqs. 3–6, [`objective`]),
//! * exact latency-optimal routing given a placement — a layered DP over
//!   (chain position × hosting node) ([`routing`]),
//! * the embedded eshopOnContainers dependency dataset and request
//!   generators ([`dataset`]),
//! * scenario assembly: topology + catalog + users + constraint knobs in one
//!   seeded, reproducible bundle ([`scenario`]).
//!
//! Everything downstream (the SoCL heuristic, the exact optimizer, the
//! baselines, the simulator and the benches) consumes [`scenario::Scenario`].

pub mod codec;
pub mod contention;
pub mod dataset;
pub mod datasets_extra;
pub mod io;
pub mod latency;
pub mod objective;
pub mod placement;
pub mod preferences;
pub mod request;
pub mod routing;
pub mod scenario;
pub mod service;
pub mod stats;

pub use codec::{crc32, BinReader, BinWriter, CodecError};
pub use contention::{link_loads, route_all_contention_aware, ContentionReport, LinkLoads};
pub use dataset::{ChainScratch, DependencyDataset, EshopDataset};
pub use datasets_extra::{SockShopDataset, TrainTicketDataset};
pub use io::{PlacementSnapshot, ScenarioSnapshot};
pub use latency::{completion_time, CompletionBreakdown};
pub use objective::{evaluate, ConstraintReport, Evaluation};
pub use placement::{Assignment, Placement, ReplicaCounts};
pub use preferences::{chain_similarity, PreferenceModel};
pub use request::{RequestConfig, UserId, UserRequest};
pub use routing::{
    greedy_route, optimal_route, optimal_route_with, route_all, RouteOutcome, RouteScratch,
};
pub use scenario::{Scenario, ScenarioConfig};
pub use service::{Microservice, ServiceCatalog, ServiceId};

#[cfg(test)]
mod proptests;

//! Network contention analysis and contention-aware routing.
//!
//! The paper's introduction motivates coordinated routing with "path
//! conflicts and network contention", but the optimization model itself
//! treats links as uncontended pipes. This module closes that gap as an
//! extension (DESIGN.md §6):
//!
//! * [`link_loads`] — given an assignment, the total data volume crossing
//!   each physical link (upload, inter-service and return legs, each along
//!   the same paths the latency model charges),
//! * [`ContentionReport`] — per-link utilization against a per-slot
//!   capacity, hotspot listing, and a Jain fairness index over link loads,
//! * [`route_all_contention_aware`] — a sequential penalty router: requests
//!   are routed one at a time with link weights inflated by the load left
//!   by previous requests, trading a little per-request latency for a much
//!   flatter load profile. The paper's conventional-strategy critique is
//!   quantified by comparing this router's hotspot peak against the
//!   selfish optimum's.

use crate::placement::{Assignment, Placement};
use crate::request::UserRequest;
use crate::scenario::Scenario;
use crate::service::ServiceId;
use socl_net::{fcmp, NodeId, PathMetric, ShortestPaths};

/// Per-link load in GB for one scheduling slot.
#[derive(Debug, Clone)]
pub struct LinkLoads {
    /// Indexed like [`socl_net::EdgeNetwork::links`].
    pub gb: Vec<f64>,
}

impl LinkLoads {
    /// All-zero loads for `n` links.
    pub fn zero(n: usize) -> Self {
        Self { gb: vec![0.0; n] }
    }

    /// Total volume moved across the network.
    pub fn total(&self) -> f64 {
        self.gb.iter().sum()
    }

    /// The heaviest link `(index, gb)`, or `None` for an empty network.
    pub fn hottest(&self) -> Option<(usize, f64)> {
        self.gb
            .iter()
            .copied()
            .enumerate()
            .max_by(fcmp::by_key(|x: &(usize, f64)| x.1))
    }

    /// Jain's fairness index over link loads: 1 = perfectly balanced,
    /// `1/n` = one link carries everything. Returns 1 for idle networks.
    pub fn fairness(&self) -> f64 {
        let n = self.gb.len();
        if n == 0 {
            return 1.0;
        }
        let sum: f64 = self.gb.iter().sum();
        if sum <= 0.0 {
            return 1.0;
        }
        let sum_sq: f64 = self.gb.iter().map(|x| x * x).sum();
        (sum * sum) / (n as f64 * sum_sq)
    }
}

/// Walk the latency-optimal path from `a` to `b`, adding `gb` to every link
/// on it. (Transfers use the latency metric, mirroring `AllPairs`.)
fn add_path_load(sc: &Scenario, loads: &mut LinkLoads, a: NodeId, b: NodeId, gb: f64) {
    if a == b || gb <= 0.0 {
        return;
    }
    let sp = ShortestPaths::dijkstra(&sc.net, a, PathMetric::Latency);
    if let Some(path) = sp.path_to(b) {
        for w in path.windows(2) {
            // Find the (fastest) connecting link index.
            let mut best: Option<(usize, f64)> = None;
            for nb in sc.net.neighbors(w[0]) {
                if nb.node == w[1] && best.is_none_or(|(_, r)| nb.rate > r) {
                    best = Some((nb.link, nb.rate));
                }
            }
            if let Some((idx, _)) = best {
                loads.gb[idx] += gb;
            }
        }
    }
}

/// Aggregate per-link loads induced by `assignment` on `scenario`.
///
/// Requests that fell back to the cloud contribute nothing (their traffic
/// leaves the edge).
pub fn link_loads(sc: &Scenario, assignment: &Assignment) -> LinkLoads {
    let mut loads = LinkLoads::zero(sc.net.link_count());
    for (h, req) in sc.requests.iter().enumerate() {
        let Some(route) = assignment.route(h) else {
            continue;
        };
        let (Some(&first), Some(&last)) = (route.first(), route.last()) else {
            continue;
        };
        add_path_load(sc, &mut loads, req.location, first, req.r_in);
        for (j, &r) in req.edge_data.iter().enumerate() {
            add_path_load(sc, &mut loads, route[j], route[j + 1], r);
        }
        // Return leg rides the min-hop path; approximate its load on the
        // latency path (identical in the common single-path case).
        add_path_load(sc, &mut loads, last, req.location, req.r_out);
    }
    loads
}

/// Contention summary for one slot.
#[derive(Debug, Clone)]
pub struct ContentionReport {
    pub loads: LinkLoads,
    /// Utilization per link: `gb / (rate · slot_seconds)`.
    pub utilization: Vec<f64>,
    /// Links above the hotspot threshold, `(link index, utilization)`,
    /// hottest first.
    pub hotspots: Vec<(usize, f64)>,
}

impl ContentionReport {
    /// Build from loads against a slot length in seconds.
    pub fn new(sc: &Scenario, loads: LinkLoads, slot_seconds: f64, hotspot_threshold: f64) -> Self {
        let utilization: Vec<f64> = sc
            .net
            .links()
            .iter()
            .zip(&loads.gb)
            .map(|(l, &gb)| gb / (l.rate() * slot_seconds))
            .collect();
        let mut hotspots: Vec<(usize, f64)> = utilization
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, u)| u > hotspot_threshold)
            .collect();
        hotspots.sort_by(|a, b| b.1.total_cmp(&a.1));
        Self {
            loads,
            utilization,
            hotspots,
        }
    }

    /// Peak link utilization.
    pub fn peak_utilization(&self) -> f64 {
        self.utilization.iter().copied().fold(0.0, f64::max)
    }
}

/// Contention-aware sequential routing: route requests one at a time,
/// penalizing each link's effective weight by its accumulated load.
///
/// The per-link weight used for request `h` is
/// `(1/b) · (1 + alpha · load_gb(l))` — a linear congestion price. With
/// `alpha = 0` this reduces to the selfish optimum of [`crate::routing::route_all`].
pub fn route_all_contention_aware(sc: &Scenario, placement: &Placement, alpha: f64) -> Assignment {
    assert!(alpha >= 0.0, "alpha must be non-negative");
    let mut loads = LinkLoads::zero(sc.net.link_count());
    let mut routes: Vec<Option<Vec<NodeId>>> = Vec::with_capacity(sc.users());

    for req in &sc.requests {
        let route = route_one_penalized(sc, placement, req, &loads, alpha);
        if let Some(route) = &route {
            if let (Some(&first), Some(&last)) = (route.first(), route.last()) {
                // Charge this request's traffic onto the links it uses.
                let mut tmp = LinkLoads::zero(sc.net.link_count());
                add_path_load(sc, &mut tmp, req.location, first, req.r_in);
                for (j, &r) in req.edge_data.iter().enumerate() {
                    add_path_load(sc, &mut tmp, route[j], route[j + 1], r);
                }
                add_path_load(sc, &mut tmp, last, req.location, req.r_out);
                for (l, g) in loads.gb.iter_mut().zip(&tmp.gb) {
                    *l += g;
                }
            }
        }
        routes.push(route);
    }
    Assignment::new(routes)
}

/// Penalized per-request DP: like `optimal_route` but with congestion-priced
/// transfer weights. Node-to-node weights are evaluated on the *penalized*
/// single-source trees so path choice reacts to load, not just endpoints.
fn route_one_penalized(
    sc: &Scenario,
    placement: &Placement,
    req: &UserRequest,
    loads: &LinkLoads,
    alpha: f64,
) -> Option<Vec<NodeId>> {
    // Penalized pairwise weights via Dijkstra over adjusted rates. For the
    // ≤ 30-node networks of the paper this is cheap; the penalty factor is
    // folded into an effective rate so the existing Dijkstra applies.
    let n = sc.net.node_count();
    // Build a penalized copy of the network once per request.
    let mut penalized = socl_net::EdgeNetwork::new();
    for k in sc.net.node_ids() {
        penalized.push_server(sc.net.server(k).clone());
    }
    for (idx, link) in sc.net.links().iter().enumerate() {
        let factor = 1.0 + alpha * loads.gb[idx];
        let rate = link.rate() / factor;
        penalized.add_link(link.a, link.b, socl_net::LinkParams::from_rate(rate));
    }
    let pap = socl_net::AllPairs::build(&penalized);

    // Layered DP identical in shape to `optimal_route`, on penalized weights.
    let layers: Vec<Vec<NodeId>> = req
        .chain
        .iter()
        .map(|&m: &ServiceId| placement.hosts_of(m))
        .collect();
    if layers.iter().any(Vec::is_empty) {
        return None;
    }
    let n_layers = layers.len();
    let mut cost: Vec<Vec<f64>> = Vec::with_capacity(n_layers);
    let mut back: Vec<Vec<usize>> = Vec::with_capacity(n_layers);
    cost.push(
        layers[0]
            .iter()
            .map(|&k| {
                pap.transfer_time(req.location, k, req.r_in)
                    + sc.catalog.compute_gflop(req.chain[0]) / sc.net.compute_gflops(k)
            })
            .collect(),
    );
    back.push(vec![usize::MAX; layers[0].len()]);
    for j in 1..n_layers {
        let q = sc.catalog.compute_gflop(req.chain[j]);
        let r = req.edge_data[j - 1];
        let mut row = Vec::with_capacity(layers[j].len());
        let mut brow = Vec::with_capacity(layers[j].len());
        for &k in &layers[j] {
            let mut best = f64::INFINITY;
            let mut arg = usize::MAX;
            for (s, &p) in layers[j - 1].iter().enumerate() {
                let c = cost[j - 1][s] + pap.transfer_time(p, k, r);
                if c < best {
                    best = c;
                    arg = s;
                }
            }
            row.push(best + q / sc.net.compute_gflops(k));
            brow.push(arg);
        }
        cost.push(row);
        back.push(brow);
    }
    let (mut s, _) = layers[n_layers - 1]
        .iter()
        .enumerate()
        .map(|(s, &k)| {
            (
                s,
                cost[n_layers - 1][s] + pap.return_time(k, req.location, req.r_out),
            )
        })
        .min_by(fcmp::by_key(|x: &(usize, f64)| x.1))?;
    let mut route = vec![NodeId(0); n_layers];
    for j in (0..n_layers).rev() {
        route[j] = layers[j][s];
        s = back[j][s];
    }
    let _ = n;
    Some(route)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::route_all;
    use crate::scenario::ScenarioConfig;

    fn scenario(seed: u64) -> Scenario {
        ScenarioConfig::paper(10, 50).build(seed)
    }

    #[test]
    fn loads_are_nonnegative_and_local_traffic_is_free() {
        let sc = scenario(1);
        let placement = Placement::full(sc.services(), sc.nodes());
        let asg = route_all(&sc.requests, &placement, &sc.net, &sc.ap, &sc.catalog);
        let loads = link_loads(&sc, &asg);
        assert!(loads.gb.iter().all(|&g| g >= 0.0));
        // Full placement routes everything locally except user legs; total
        // load is finite and bounded by total request volume times path len.
        assert!(loads.total().is_finite());
    }

    #[test]
    fn empty_assignment_produces_zero_load() {
        let sc = scenario(2);
        let asg = Assignment::new(vec![None; sc.users()]);
        let loads = link_loads(&sc, &asg);
        assert_eq!(loads.total(), 0.0);
        assert_eq!(loads.fairness(), 1.0);
    }

    #[test]
    fn fairness_index_bounds() {
        let mut l = LinkLoads::zero(4);
        l.gb = vec![1.0, 1.0, 1.0, 1.0];
        assert!((l.fairness() - 1.0).abs() < 1e-12);
        l.gb = vec![4.0, 0.0, 0.0, 0.0];
        assert!((l.fairness() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn alpha_zero_matches_selfish_routing_cost() {
        let sc = scenario(3);
        let placement = Placement::full(sc.services(), sc.nodes());
        let selfish = route_all(&sc.requests, &placement, &sc.net, &sc.ap, &sc.catalog);
        let aware = route_all_contention_aware(&sc, &placement, 0.0);
        // With no penalty the DP solves the same problem; routes may differ
        // only among ties, so compare realized completion times.
        for (h, req) in sc.requests.iter().enumerate() {
            let t1 = crate::latency::completion_time(
                req,
                selfish.route(h).unwrap(),
                &sc.net,
                &sc.ap,
                &sc.catalog,
            )
            .total();
            let t2 = crate::latency::completion_time(
                req,
                aware.route(h).unwrap(),
                &sc.net,
                &sc.ap,
                &sc.catalog,
            )
            .total();
            assert!((t1 - t2).abs() < 1e-9, "request {h}: {t1} vs {t2}");
        }
    }

    #[test]
    fn penalty_flattens_hotspots() {
        // With replicated services, the priced router steers requests
        // between replicas: the hottest link must carry strictly less and
        // the load profile must be fairer than the selfish optimum's.
        // (With a single instance per service the endpoints are fixed and
        // no router can help — that degenerate case is covered by
        // `alpha_zero_matches_selfish_routing_cost`.)
        let sc = scenario(4);
        let mut placement = Placement::empty(sc.services(), sc.nodes());
        for m in sc.requested_services() {
            let mut nodes: Vec<NodeId> = sc.net.node_ids().collect();
            nodes.sort_by_key(|&k| std::cmp::Reverse(sc.demand(m, k)));
            for &k in nodes.iter().take(3) {
                placement.set(m, k, true);
            }
        }
        let selfish = route_all(&sc.requests, &placement, &sc.net, &sc.ap, &sc.catalog);
        let aware = route_all_contention_aware(&sc, &placement, 0.5);
        let l_selfish = link_loads(&sc, &selfish);
        let l_aware = link_loads(&sc, &aware);
        let peak_selfish = l_selfish.hottest().map_or(0.0, |(_, g)| g);
        let peak_aware = l_aware.hottest().map_or(0.0, |(_, g)| g);
        assert!(
            peak_aware <= peak_selfish + 1e-9,
            "penalized peak {peak_aware} above selfish peak {peak_selfish}"
        );
        assert!(
            l_aware.fairness() >= l_selfish.fairness() - 1e-9,
            "pricing reduced fairness: {} vs {}",
            l_aware.fairness(),
            l_selfish.fairness()
        );
    }

    #[test]
    fn contention_report_flags_hotspots() {
        let sc = scenario(5);
        let placement = Placement::full(sc.services(), sc.nodes());
        let asg = route_all(&sc.requests, &placement, &sc.net, &sc.ap, &sc.catalog);
        let loads = link_loads(&sc, &asg);
        let report = ContentionReport::new(&sc, loads, 1.0, 0.0);
        // Thresold 0 ⇒ every loaded link is a hotspot; hotspots sorted desc.
        for w in report.hotspots.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(report.peak_utilization() >= 0.0);
        assert_eq!(report.utilization.len(), sc.net.link_count());
    }
}

//! Microservice dependency datasets.
//!
//! The paper evaluates on the *eshopOnContainers* project from the curated
//! "Microservices (Version 1.0)" dataset [23]. We embed the public
//! eshopOnContainers architecture as a static dependency DAG (service names
//! and caller→callee edges) and sample request chains as loop-free walks over
//! it. Per-service parameters (`q(m_i)` ∈ [1,3] GFLOPs, etc.) are sampled
//! from the paper's published ranges with a seeded RNG.
//!
//! [`DependencyDataset`] is the generic interface, so synthetic DAGs (used by
//! tests and the trace generator) plug in the same way as the real dataset.

use crate::request::{RequestConfig, UserId, UserRequest};
use crate::service::{Microservice, ServiceCatalog, ServiceId};
use rand::seq::SliceRandom;
use rand::Rng;
#[cfg(test)]
use rand::SeedableRng;
use socl_net::NodeId;

/// Reusable buffers for in-place chain sampling
/// ([`DependencyDataset::sample_chain_into`] and
/// [`PreferenceModel::sample_chain_into`](crate::preferences::PreferenceModel::sample_chain_into)).
/// One instance amortizes every chain re-sample in a simulation run
/// (rule `A1-hot-alloc`); contents between calls are meaningless.
#[derive(Debug, Clone, Default)]
pub struct ChainScratch {
    /// Candidate chain for the current attempt.
    pub attempt: Vec<ServiceId>,
    /// Successor candidates of the walk's current service.
    pub succ: Vec<u32>,
    /// Single-service head chain (preference-guided sampling only).
    pub head: Vec<ServiceId>,
}

impl ChainScratch {
    /// Empty scratch; buffers grow on first use and are then recycled.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// A microservice dependency graph from which request chains are sampled.
#[derive(Debug, Clone)]
pub struct DependencyDataset {
    /// Service names, indexed by [`ServiceId`].
    names: Vec<&'static str>,
    /// Caller → callee edges; acyclic by construction.
    edges: Vec<(u32, u32)>,
    /// Services at which user-facing chains start (front doors).
    entries: Vec<u32>,
}

impl DependencyDataset {
    /// Build a dataset from parts.
    ///
    /// # Panics
    /// Panics if edges reference out-of-range services, if an entry is out of
    /// range, or if the edge set has a directed cycle.
    pub fn new(names: Vec<&'static str>, edges: Vec<(u32, u32)>, entries: Vec<u32>) -> Self {
        let n = names.len() as u32;
        for &(a, b) in &edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            assert!(a != b, "self-dependency on service {a}");
        }
        for &e in &entries {
            assert!(e < n, "entry {e} out of range");
        }
        let ds = Self {
            names,
            edges,
            entries,
        };
        assert!(ds.is_acyclic(), "dependency graph has a cycle");
        ds
    }

    /// Number of microservices.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the dataset has no services.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Service names in id order.
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// Raw dependency edges.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Direct callees of `s`.
    pub fn successors(&self, s: u32) -> Vec<u32> {
        self.successors_iter(s).collect()
    }

    /// Direct callees of `s`, without allocating — the form hot loops use
    /// (rule `A1-hot-alloc`).
    pub fn successors_iter(&self, s: u32) -> impl Iterator<Item = u32> + '_ {
        self.edges
            .iter()
            .filter(move |&&(a, _)| a == s)
            .map(|&(_, b)| b)
    }

    fn is_acyclic(&self) -> bool {
        // Kahn's algorithm.
        let n = self.names.len();
        let mut indeg = vec![0usize; n];
        for &(_, b) in &self.edges {
            indeg[b as usize] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &(a, b) in &self.edges {
                if a as usize == u {
                    indeg[b as usize] -= 1;
                    if indeg[b as usize] == 0 {
                        queue.push(b as usize);
                    }
                }
            }
        }
        seen == n
    }

    /// Instantiate a [`ServiceCatalog`] with parameters sampled from the
    /// paper's ranges: compute `q ∈ [1,3]` GFLOP, deployment cost
    /// `κ ∈ [200, 500]`, storage `φ ∈ [1, 2]` units.
    pub fn catalog<R: Rng>(&self, rng: &mut R) -> ServiceCatalog {
        let mut cat = ServiceCatalog::new();
        for &name in &self.names {
            cat.push(Microservice::named(
                name,
                rng.gen_range(200.0..=500.0),
                rng.gen_range(1.0..=2.0),
                rng.gen_range(1.0..=3.0),
            ));
        }
        cat
    }

    /// Sample one loop-free dependency chain of at most `max_len` services,
    /// starting from a random entry point.
    ///
    /// The walk follows caller→callee edges, never revisits a service (the
    /// graph is a DAG, so this is automatic) and stops at a sink or when the
    /// target length is reached. Always returns at least one service.
    pub fn sample_chain<R: Rng>(
        &self,
        rng: &mut R,
        min_len: usize,
        max_len: usize,
    ) -> Vec<ServiceId> {
        let mut attempt = Vec::new();
        let mut succ = Vec::new();
        let mut out = Vec::new();
        self.sample_chain_into(rng, min_len, max_len, &mut attempt, &mut succ, &mut out);
        out
    }

    /// [`sample_chain`](Self::sample_chain) into caller-owned buffers, so the
    /// online simulator's churn loop re-samples chains without allocating
    /// (rule `A1-hot-alloc`). `attempt` and `succ` are pure scratch; the
    /// chain is left in `out` (previous contents discarded).
    ///
    /// Draws from `rng` in exactly the same order as `sample_chain`, so a
    /// seeded run produces identical chains through either entry point.
    pub fn sample_chain_into<R: Rng>(
        &self,
        rng: &mut R,
        min_len: usize,
        max_len: usize,
        attempt: &mut Vec<ServiceId>,
        succ: &mut Vec<u32>,
        out: &mut Vec<ServiceId>,
    ) {
        assert!(!self.names.is_empty(), "empty dataset");
        let max_len = max_len.max(1);
        let min_len = min_len.clamp(1, max_len);
        // Retry a few times to satisfy min_len; fall back to the longest
        // seen, which accumulates in `out`.
        out.clear();
        for _ in 0..8 {
            let target = rng.gen_range(min_len..=max_len);
            attempt.clear();
            let mut cur = *self.entries.choose(rng).unwrap_or(&0);
            attempt.push(ServiceId(cur));
            while attempt.len() < target {
                succ.clear();
                succ.extend(self.successors_iter(cur));
                if succ.is_empty() {
                    break;
                }
                match succ.choose(rng) {
                    Some(&next) => cur = next,
                    None => break,
                }
                attempt.push(ServiceId(cur));
            }
            if attempt.len() >= min_len {
                std::mem::swap(out, attempt);
                return;
            }
            if attempt.len() > out.len() {
                std::mem::swap(out, attempt);
            }
        }
    }

    /// Sample a full request set: `users` requests located uniformly at
    /// random over `nodes` edge servers, chains per [`RequestConfig`].
    pub fn sample_requests<R: Rng>(
        &self,
        rng: &mut R,
        users: usize,
        nodes: usize,
        cfg: &RequestConfig,
    ) -> Vec<UserRequest> {
        assert!(nodes > 0, "need at least one edge server");
        (0..users)
            .map(|h| {
                let chain = self.sample_chain(rng, cfg.chain_len.0, cfg.chain_len.1);
                let edge_data = (0..chain.len().saturating_sub(1))
                    .map(|_| rng.gen_range(cfg.edge_data.0..=cfg.edge_data.1))
                    .collect();
                UserRequest::new(
                    UserId(h as u32),
                    NodeId(rng.gen_range(0..nodes as u32)),
                    chain,
                    edge_data,
                    rng.gen_range(cfg.r_in.0..=cfg.r_in.1),
                    rng.gen_range(cfg.r_out.0..=cfg.r_out.1),
                    cfg.d_max,
                )
            })
            .collect()
    }
}

/// The embedded eshopOnContainers dependency dataset.
///
/// Twelve services of the public eshopOnContainers reference architecture.
/// Edges are caller→callee dependencies; the two shopping aggregators and the
/// web-status front end are entry points.
pub struct EshopDataset;

impl EshopDataset {
    /// Service ids by name, for readability in examples and tests.
    pub const WEB_SHOPPING_AGG: u32 = 0;
    pub const MOBILE_SHOPPING_AGG: u32 = 1;
    pub const WEB_STATUS: u32 = 2;
    pub const IDENTITY_API: u32 = 3;
    pub const CATALOG_API: u32 = 4;
    pub const BASKET_API: u32 = 5;
    pub const ORDERING_API: u32 = 6;
    pub const ORDERING_BACKGROUND: u32 = 7;
    pub const PAYMENT_API: u32 = 8;
    pub const WEBHOOKS_API: u32 = 9;
    pub const SIGNALR_HUB: u32 = 10;
    pub const LOCATIONS_API: u32 = 11;

    /// Build the dependency dataset.
    pub fn build() -> DependencyDataset {
        let names = vec![
            "web-shopping-agg",
            "mobile-shopping-agg",
            "web-status",
            "identity-api",
            "catalog-api",
            "basket-api",
            "ordering-api",
            "ordering-background",
            "payment-api",
            "webhooks-api",
            "signalr-hub",
            "locations-api",
        ];
        use EshopDataset as E;
        let edges = vec![
            // Web shopping aggregator fans out to the domain services.
            (E::WEB_SHOPPING_AGG, E::IDENTITY_API),
            (E::WEB_SHOPPING_AGG, E::CATALOG_API),
            (E::WEB_SHOPPING_AGG, E::BASKET_API),
            (E::WEB_SHOPPING_AGG, E::ORDERING_API),
            // Mobile aggregator mirrors the web one plus locations.
            (E::MOBILE_SHOPPING_AGG, E::IDENTITY_API),
            (E::MOBILE_SHOPPING_AGG, E::CATALOG_API),
            (E::MOBILE_SHOPPING_AGG, E::BASKET_API),
            (E::MOBILE_SHOPPING_AGG, E::ORDERING_API),
            (E::MOBILE_SHOPPING_AGG, E::LOCATIONS_API),
            // Health dashboard probes everything user-facing.
            (E::WEB_STATUS, E::CATALOG_API),
            (E::WEB_STATUS, E::ORDERING_API),
            // Basket checks identity and reads catalog prices.
            (E::BASKET_API, E::IDENTITY_API),
            (E::BASKET_API, E::CATALOG_API),
            // Ordering validates identity, drains the basket, kicks off
            // background grace-period processing and notifies via SignalR.
            (E::ORDERING_API, E::IDENTITY_API),
            (E::ORDERING_API, E::BASKET_API),
            (E::ORDERING_API, E::ORDERING_BACKGROUND),
            (E::ORDERING_API, E::SIGNALR_HUB),
            // Background ordering settles payments.
            (E::ORDERING_BACKGROUND, E::PAYMENT_API),
            // Payment confirmation flows into webhooks.
            (E::PAYMENT_API, E::WEBHOOKS_API),
            // Webhooks verify callers against identity.
            (E::WEBHOOKS_API, E::IDENTITY_API),
            // Locations checks identity too.
            (E::LOCATIONS_API, E::IDENTITY_API),
        ];
        let entries = vec![E::WEB_SHOPPING_AGG, E::MOBILE_SHOPPING_AGG, E::WEB_STATUS];
        DependencyDataset::new(names, edges, entries)
    }
}

/// A small synthetic linear dataset (`m0 → m1 → … → m{n-1}`) for tests.
pub fn linear_dataset(n: usize) -> DependencyDataset {
    const NAMES: [&str; 16] = [
        "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "s12", "s13",
        "s14", "s15",
    ];
    assert!(n >= 1 && n <= NAMES.len());
    let names = NAMES[..n].to_vec();
    let edges = (0..n.saturating_sub(1) as u32)
        .map(|i| (i, i + 1))
        .collect();
    DependencyDataset::new(names, edges, vec![0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn eshop_is_a_valid_dag() {
        let ds = EshopDataset::build();
        assert_eq!(ds.len(), 12);
        // Aggregator fans out to four+ services.
        assert!(ds.successors(EshopDataset::WEB_SHOPPING_AGG).len() >= 4);
        // Identity is a sink.
        assert!(ds.successors(EshopDataset::IDENTITY_API).is_empty());
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycles_rejected() {
        DependencyDataset::new(vec!["a", "b"], vec![(0, 1), (1, 0)], vec![0]);
    }

    #[test]
    #[should_panic(expected = "self-dependency")]
    fn self_edges_rejected() {
        DependencyDataset::new(vec!["a"], vec![(0, 0)], vec![0]);
    }

    #[test]
    fn chains_are_paths_in_the_dag() {
        let ds = EshopDataset::build();
        let mut rng = rng();
        for _ in 0..200 {
            let chain = ds.sample_chain(&mut rng, 2, 8);
            assert!(!chain.is_empty());
            assert!(chain.len() <= 8);
            for w in chain.windows(2) {
                assert!(
                    ds.successors(w[0].0).contains(&w[1].0),
                    "{:?} not an edge",
                    w
                );
            }
            // No duplicates.
            let mut s = chain.clone();
            s.sort();
            s.dedup();
            assert_eq!(s.len(), chain.len());
        }
    }

    #[test]
    fn chains_can_reach_depth_five() {
        // agg → ordering → ordering-background → payment → webhooks → identity
        let ds = EshopDataset::build();
        let mut rng = rng();
        let mut max = 0;
        for _ in 0..500 {
            max = max.max(ds.sample_chain(&mut rng, 4, 8).len());
        }
        assert!(max >= 5, "never sampled a deep chain (max={max})");
    }

    #[test]
    fn catalog_parameters_in_paper_ranges() {
        let ds = EshopDataset::build();
        let cat = ds.catalog(&mut rng());
        assert_eq!(cat.len(), 12);
        for m in cat.ids() {
            assert!((1.0..=3.0).contains(&cat.compute_gflop(m)));
            assert!((200.0..=500.0).contains(&cat.deploy_cost(m)));
            assert!((1.0..=2.0).contains(&cat.storage(m)));
        }
        assert_eq!(cat.get(ServiceId(4)).name, "catalog-api");
    }

    #[test]
    fn sampled_requests_are_well_formed() {
        let ds = EshopDataset::build();
        let cfg = RequestConfig::default();
        let reqs = ds.sample_requests(&mut rng(), 50, 10, &cfg);
        assert_eq!(reqs.len(), 50);
        for (h, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, UserId(h as u32));
            assert!(r.location.0 < 10);
            assert!(!r.chain.is_empty());
            for &d in &r.edge_data {
                assert!((cfg.edge_data.0..=cfg.edge_data.1).contains(&d));
            }
        }
    }

    #[test]
    fn request_sampling_is_deterministic() {
        let ds = EshopDataset::build();
        let cfg = RequestConfig::default();
        let a = ds.sample_requests(&mut StdRng::seed_from_u64(3), 20, 5, &cfg);
        let b = ds.sample_requests(&mut StdRng::seed_from_u64(3), 20, 5, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn linear_dataset_chains_are_prefix_paths() {
        let ds = linear_dataset(5);
        let mut rng = rng();
        let chain = ds.sample_chain(&mut rng, 5, 5);
        assert_eq!(
            chain,
            (0..5).map(ServiceId).collect::<Vec<_>>(),
            "linear walk must follow the line"
        );
    }
}

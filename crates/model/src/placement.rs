//! Deployment decisions `x(i,k)` and service assignments `y(h,i,k)`.
//!
//! [`Placement`] is the dense binary matrix of deployment decisions
//! (Definition 3); [`Assignment`] materializes the service decision — for
//! each request and each chain position, the node that serves it. The
//! assignment representation exploits that `Σ_k y(h,i,k) = 1` (Eq. 9): we
//! store one node per (request, position) instead of the full tensor.

use crate::request::UserRequest;
use crate::service::{ServiceCatalog, ServiceId};
use socl_net::{EdgeNetwork, NodeId};

/// The deployment matrix `x(i,k) ∈ {0,1}` for `|M|` services × `|V|` nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    services: usize,
    nodes: usize,
    /// Row-major service-by-node bitmap.
    x: Vec<bool>,
}

impl Placement {
    /// All-zero placement.
    pub fn empty(services: usize, nodes: usize) -> Self {
        Self {
            services,
            nodes,
            x: vec![false; services * nodes],
        }
    }

    /// Placement with an instance of every service on every node
    /// (GC-OG's starting point; also the latency-optimal extreme).
    pub fn full(services: usize, nodes: usize) -> Self {
        Self {
            services,
            nodes,
            x: vec![true; services * nodes],
        }
    }

    /// Number of services `|M|` this matrix covers.
    #[inline]
    pub fn services(&self) -> usize {
        self.services
    }

    /// Number of nodes `|V|` this matrix covers.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Read `x(i,k)`.
    #[inline]
    pub fn get(&self, m: ServiceId, k: NodeId) -> bool {
        self.x[m.idx() * self.nodes + k.idx()]
    }

    /// Write `x(i,k)`.
    #[inline]
    pub fn set(&mut self, m: ServiceId, k: NodeId, v: bool) {
        self.x[m.idx() * self.nodes + k.idx()] = v;
    }

    /// Nodes hosting an instance of `m`.
    pub fn hosts_of(&self, m: ServiceId) -> Vec<NodeId> {
        self.hosts_iter(m).collect()
    }

    /// Nodes hosting an instance of `m`, in ascending id order, without
    /// allocating — the hot-loop variant of [`hosts_of`](Self::hosts_of)
    /// (rule `A1-hot-alloc`).
    pub fn hosts_iter(&self, m: ServiceId) -> impl Iterator<Item = NodeId> + '_ {
        let row = m.idx() * self.nodes;
        (0..self.nodes)
            .filter(move |&k| self.x[row + k])
            .map(|k| NodeId(k as u32))
    }

    /// Number of instances of `m` across the network.
    pub fn instance_count(&self, m: ServiceId) -> usize {
        let row = m.idx() * self.nodes;
        self.x[row..row + self.nodes].iter().filter(|&&b| b).count()
    }

    /// Services hosted on `k`.
    pub fn services_on(&self, k: NodeId) -> Vec<ServiceId> {
        (0..self.services)
            .filter(|&i| self.x[i * self.nodes + k.idx()])
            .map(|i| ServiceId(i as u32))
            .collect()
    }

    /// Number of services hosted on `k` — [`services_on`](Self::services_on)
    /// without materializing the list.
    pub fn services_count_on(&self, k: NodeId) -> usize {
        (0..self.services)
            .filter(|&i| self.x[i * self.nodes + k.idx()])
            .count()
    }

    /// Total number of deployed instances.
    pub fn total_instances(&self) -> usize {
        self.x.iter().filter(|&&b| b).count()
    }

    /// Total deployment cost `Σ_k 𝒦_k = Σ_k Σ_i κ(m_i)·x(i,k)` (Eq. 1).
    pub fn deployment_cost(&self, catalog: &ServiceCatalog) -> f64 {
        let mut total = 0.0;
        for i in 0..self.services {
            let kappa = catalog.deploy_cost(ServiceId(i as u32));
            let row = i * self.nodes;
            let count = self.x[row..row + self.nodes].iter().filter(|&&b| b).count();
            total += kappa * count as f64;
        }
        total
    }

    /// Storage used on node `k`: `Σ_i x(i,k)·φ(m_i)`.
    pub fn storage_used(&self, catalog: &ServiceCatalog, k: NodeId) -> f64 {
        (0..self.services)
            .filter(|&i| self.x[i * self.nodes + k.idx()])
            .map(|i| catalog.storage(ServiceId(i as u32)))
            .sum()
    }

    /// True if every node satisfies the storage constraint (Eq. 6):
    /// `Σ_i x(i,k)·φ(m_i) ≤ Φ(v_k)`.
    pub fn storage_feasible(&self, catalog: &ServiceCatalog, net: &EdgeNetwork) -> bool {
        net.node_ids()
            .all(|k| self.storage_used(catalog, k) <= net.storage(k) + 1e-9)
    }

    /// Nodes whose storage constraint is violated, with the overshoot.
    pub fn storage_violations(
        &self,
        catalog: &ServiceCatalog,
        net: &EdgeNetwork,
    ) -> Vec<(NodeId, f64)> {
        net.node_ids()
            .filter_map(|k| {
                let over = self.storage_used(catalog, k) - net.storage(k);
                (over > 1e-9).then_some((k, over))
            })
            .collect()
    }

    /// True if every service requested by at least one user has at least one
    /// instance somewhere (otherwise those users must fall back to the cloud).
    pub fn covers(&self, requests: &[UserRequest]) -> bool {
        requests
            .iter()
            .flat_map(|r| r.chain.iter())
            .all(|&m| self.instance_count(m) > 0)
    }

    /// Iterator over all deployed `(service, node)` pairs.
    pub fn iter_deployed(&self) -> impl Iterator<Item = (ServiceId, NodeId)> + '_ {
        (0..self.services).flat_map(move |i| {
            let row = i * self.nodes;
            (0..self.nodes)
                .filter(move |&k| self.x[row + k])
                .map(move |k| (ServiceId(i as u32), NodeId(k as u32)))
        })
    }
}

/// Per-(service, node) warm replica counts — the serverless refinement of
/// [`Placement`].
///
/// A placement says *where* a service is deployed (`x(i,k) ∈ {0,1}`); a
/// replica-count grid says *how many* warm instances each deployment cell
/// holds. The autoscaling control plane (`socl-autoscale`) owns these counts
/// and adjusts them against observed concurrency; the execution layers
/// (`socl-sim`) serve requests from the pools they describe. The invariant
/// linking the two representations is `counts.get(m, k) > 0 ⇒
/// placement.get(m, k)` — a cell cannot hold warm replicas without being
/// deployed (see [`ReplicaCounts::consistent_with`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaCounts {
    services: usize,
    nodes: usize,
    /// Row-major service-by-node counts.
    counts: Vec<u32>,
}

impl ReplicaCounts {
    /// All-zero grid (everything scaled to zero).
    pub fn zero(services: usize, nodes: usize) -> Self {
        Self {
            services,
            nodes,
            counts: vec![0; services * nodes],
        }
    }

    /// One warm replica per deployed cell — the implicit
    /// one-instance-per-placement-entry model the testbed used before the
    /// control plane existed.
    pub fn from_placement(placement: &Placement) -> Self {
        let mut counts = Self::zero(placement.services(), placement.nodes());
        for (m, k) in placement.iter_deployed() {
            counts.set(m, k, 1);
        }
        counts
    }

    /// Number of services the grid covers.
    #[inline]
    pub fn services(&self) -> usize {
        self.services
    }

    /// Number of nodes the grid covers.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Warm replicas of `m` on `k`.
    #[inline]
    pub fn get(&self, m: ServiceId, k: NodeId) -> u32 {
        self.counts[m.idx() * self.nodes + k.idx()]
    }

    /// Set the warm replica count of `m` on `k`.
    #[inline]
    pub fn set(&mut self, m: ServiceId, k: NodeId, v: u32) {
        self.counts[m.idx() * self.nodes + k.idx()] = v;
    }

    /// Total warm replicas of `m` across the network.
    pub fn total_of(&self, m: ServiceId) -> u32 {
        let row = m.idx() * self.nodes;
        self.counts[row..row + self.nodes].iter().sum()
    }

    /// Total warm replicas across every service and node.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Iterator over all `(service, node, count)` cells with `count > 0`.
    pub fn iter_positive(&self) -> impl Iterator<Item = (ServiceId, NodeId, u32)> + '_ {
        (0..self.services).flat_map(move |i| {
            let row = i * self.nodes;
            (0..self.nodes).filter_map(move |k| {
                let c = self.counts[row + k];
                (c > 0).then_some((ServiceId(i as u32), NodeId(k as u32), c))
            })
        })
    }

    /// True when every positive cell is also deployed in `placement` —
    /// warm replicas can only live where an instance exists.
    pub fn consistent_with(&self, placement: &Placement) -> bool {
        self.iter_positive().all(|(m, k, _)| placement.get(m, k))
    }
}

/// The service decision: for request `h` and chain position `j`, the node
/// `loc^h(m)` chosen to execute the `j`-th microservice of the chain.
///
/// `None` per-request means the request could not be served from the edge at
/// all (some chain service has no instance) and fell back to the cloud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// `per_request[h]` has one entry per chain position of request `h`.
    per_request: Vec<Option<Vec<NodeId>>>,
}

impl Assignment {
    /// Build from raw per-request routes.
    pub fn new(per_request: Vec<Option<Vec<NodeId>>>) -> Self {
        Self { per_request }
    }

    /// Number of requests covered.
    pub fn len(&self) -> usize {
        self.per_request.len()
    }

    /// True when no requests are covered.
    pub fn is_empty(&self) -> bool {
        self.per_request.is_empty()
    }

    /// The route of request `h` (node per chain position), if edge-served.
    pub fn route(&self, h: usize) -> Option<&[NodeId]> {
        self.per_request[h].as_deref()
    }

    /// Number of requests that had to fall back to the cloud.
    pub fn cloud_fallbacks(&self) -> usize {
        self.per_request.iter().filter(|r| r.is_none()).count()
    }

    /// Check Eq. 10 (`y(h,i,k) ≤ x(i,k)`): every routed node actually hosts
    /// the corresponding service instance.
    pub fn consistent_with(&self, placement: &Placement, requests: &[UserRequest]) -> bool {
        self.per_request.iter().zip(requests).all(|(route, req)| {
            route.as_ref().is_none_or(|nodes| {
                nodes.len() == req.chain.len()
                    && nodes
                        .iter()
                        .zip(&req.chain)
                        .all(|(&k, &m)| placement.get(m, k))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::UserId;
    use socl_net::{EdgeServer, LinkParams};

    fn catalog() -> ServiceCatalog {
        ServiceCatalog::from_services(vec![
            crate::service::Microservice::new(100.0, 1.0, 1.0),
            crate::service::Microservice::new(250.0, 2.0, 2.0),
        ])
    }

    fn net2() -> EdgeNetwork {
        let mut net = EdgeNetwork::new();
        net.push_server(EdgeServer::new(10.0, 2.5));
        net.push_server(EdgeServer::new(10.0, 8.0));
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(10.0));
        net
    }

    #[test]
    fn set_get_roundtrip() {
        let mut p = Placement::empty(2, 3);
        assert!(!p.get(ServiceId(1), NodeId(2)));
        p.set(ServiceId(1), NodeId(2), true);
        assert!(p.get(ServiceId(1), NodeId(2)));
        assert!(!p.get(ServiceId(0), NodeId(2)));
        assert_eq!(p.total_instances(), 1);
    }

    #[test]
    fn hosts_and_services_listings() {
        let mut p = Placement::empty(2, 3);
        p.set(ServiceId(0), NodeId(0), true);
        p.set(ServiceId(0), NodeId(2), true);
        p.set(ServiceId(1), NodeId(2), true);
        assert_eq!(p.hosts_of(ServiceId(0)), vec![NodeId(0), NodeId(2)]);
        assert_eq!(p.instance_count(ServiceId(0)), 2);
        assert_eq!(p.services_on(NodeId(2)), vec![ServiceId(0), ServiceId(1)]);
        let deployed: Vec<_> = p.iter_deployed().collect();
        assert_eq!(deployed.len(), 3);
    }

    #[test]
    fn deployment_cost_weights_by_kappa() {
        let cat = catalog();
        let mut p = Placement::empty(2, 2);
        p.set(ServiceId(0), NodeId(0), true);
        p.set(ServiceId(1), NodeId(0), true);
        p.set(ServiceId(1), NodeId(1), true);
        assert_eq!(p.deployment_cost(&cat), 100.0 + 2.0 * 250.0);
    }

    #[test]
    fn storage_feasibility_detects_overflow() {
        let cat = catalog();
        let net = net2();
        let mut p = Placement::empty(2, 2);
        // Node 0 has capacity 2.5; φ = 1 + 2 = 3 overflows it.
        p.set(ServiceId(0), NodeId(0), true);
        assert!(p.storage_feasible(&cat, &net));
        p.set(ServiceId(1), NodeId(0), true);
        assert!(!p.storage_feasible(&cat, &net));
        let v = p.storage_violations(&cat, &net);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, NodeId(0));
        assert!((v[0].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn full_placement_covers_everything() {
        let p = Placement::full(2, 2);
        let req = UserRequest::new(
            UserId(0),
            NodeId(0),
            vec![ServiceId(0), ServiceId(1)],
            vec![1.0],
            0.1,
            0.1,
            10.0,
        );
        assert!(p.covers(&[req]));
        let empty = Placement::empty(2, 2);
        let req2 = UserRequest::new(
            UserId(1),
            NodeId(0),
            vec![ServiceId(0)],
            vec![],
            0.1,
            0.1,
            1.0,
        );
        assert!(!empty.covers(&[req2]));
    }

    #[test]
    fn assignment_consistency_checks_eq10() {
        let mut p = Placement::empty(2, 2);
        p.set(ServiceId(0), NodeId(1), true);
        let req = UserRequest::new(
            UserId(0),
            NodeId(0),
            vec![ServiceId(0)],
            vec![],
            0.1,
            0.1,
            1.0,
        );
        let good = Assignment::new(vec![Some(vec![NodeId(1)])]);
        assert!(good.consistent_with(&p, std::slice::from_ref(&req)));
        let bad = Assignment::new(vec![Some(vec![NodeId(0)])]);
        assert!(!bad.consistent_with(&p, std::slice::from_ref(&req)));
        let cloud = Assignment::new(vec![None]);
        assert!(cloud.consistent_with(&p, &[req]));
        assert_eq!(cloud.cloud_fallbacks(), 1);
    }
}

//! Additional embedded dependency datasets.
//!
//! The curated "Microservices (Version 1.0)" dataset the paper samples from
//! contains 20 projects; eshopOnContainers is the one the paper evaluates.
//! Two more public reference architectures are embedded here so experiments
//! can check that conclusions are not an artifact of one dependency graph:
//!
//! * **Sock Shop** (Weaveworks' microservices demo) — 13 services, shallow
//!   fan-out topology: front-end aggregating carts/catalogue/orders/user,
//!   orders fanning into payment/shipping, shipping into queue-master.
//! * **Train Ticket** (Fudan's benchmark) — a 24-service subset of the
//!   41-service system, with the deep booking chain (preserve → seat →
//!   order → payment → notification) that stresses chain-aware routing.
//!
//! Both are DAGs validated at construction, with the same front-door
//! semantics as [`crate::dataset::EshopDataset`].

use crate::dataset::DependencyDataset;

/// The Sock Shop reference architecture.
pub struct SockShopDataset;

impl SockShopDataset {
    pub const FRONT_END: u32 = 0;
    pub const EDGE_ROUTER: u32 = 1;
    pub const CATALOGUE: u32 = 2;
    pub const CATALOGUE_DB: u32 = 3;
    pub const CARTS: u32 = 4;
    pub const CARTS_DB: u32 = 5;
    pub const ORDERS: u32 = 6;
    pub const ORDERS_DB: u32 = 7;
    pub const USER: u32 = 8;
    pub const USER_DB: u32 = 9;
    pub const PAYMENT: u32 = 10;
    pub const SHIPPING: u32 = 11;
    pub const QUEUE_MASTER: u32 = 12;

    /// Build the dataset.
    pub fn build() -> DependencyDataset {
        use SockShopDataset as S;
        let names = vec![
            "front-end",
            "edge-router",
            "catalogue",
            "catalogue-db",
            "carts",
            "carts-db",
            "orders",
            "orders-db",
            "user",
            "user-db",
            "payment",
            "shipping",
            "queue-master",
        ];
        let edges = vec![
            (S::EDGE_ROUTER, S::FRONT_END),
            (S::FRONT_END, S::CATALOGUE),
            (S::FRONT_END, S::CARTS),
            (S::FRONT_END, S::ORDERS),
            (S::FRONT_END, S::USER),
            (S::CATALOGUE, S::CATALOGUE_DB),
            (S::CARTS, S::CARTS_DB),
            (S::ORDERS, S::ORDERS_DB),
            (S::ORDERS, S::PAYMENT),
            (S::ORDERS, S::SHIPPING),
            (S::ORDERS, S::USER),
            (S::USER, S::USER_DB),
            (S::SHIPPING, S::QUEUE_MASTER),
        ];
        let entries = vec![S::EDGE_ROUTER, S::FRONT_END];
        DependencyDataset::new(names, edges, entries)
    }
}

/// A 24-service subset of the Train Ticket benchmark, centred on the booking
/// flow (the deepest chain in the system).
pub struct TrainTicketDataset;

impl TrainTicketDataset {
    pub const UI_DASHBOARD: u32 = 0;
    pub const TRAVEL: u32 = 1;
    pub const TRAVEL_PLAN: u32 = 2;
    pub const ROUTE: u32 = 3;
    pub const TRAIN: u32 = 4;
    pub const STATION: u32 = 5;
    pub const BASIC: u32 = 6;
    pub const TICKET_INFO: u32 = 7;
    pub const PRICE: u32 = 8;
    pub const SEAT: u32 = 9;
    pub const CONFIG: u32 = 10;
    pub const PRESERVE: u32 = 11;
    pub const CONTACTS: u32 = 12;
    pub const SECURITY: u32 = 13;
    pub const ORDER: u32 = 14;
    pub const FOOD: u32 = 15;
    pub const ASSURANCE: u32 = 16;
    pub const CONSIGN: u32 = 17;
    pub const INSIDE_PAYMENT: u32 = 18;
    pub const PAYMENT: u32 = 19;
    pub const NOTIFICATION: u32 = 20;
    pub const USER: u32 = 21;
    pub const AUTH: u32 = 22;
    pub const VERIFICATION_CODE: u32 = 23;

    /// Build the dataset.
    pub fn build() -> DependencyDataset {
        use TrainTicketDataset as T;
        let names = vec![
            "ts-ui-dashboard",
            "ts-travel-service",
            "ts-travel-plan-service",
            "ts-route-service",
            "ts-train-service",
            "ts-station-service",
            "ts-basic-service",
            "ts-ticketinfo-service",
            "ts-price-service",
            "ts-seat-service",
            "ts-config-service",
            "ts-preserve-service",
            "ts-contacts-service",
            "ts-security-service",
            "ts-order-service",
            "ts-food-service",
            "ts-assurance-service",
            "ts-consign-service",
            "ts-inside-payment-service",
            "ts-payment-service",
            "ts-notification-service",
            "ts-user-service",
            "ts-auth-service",
            "ts-verification-code-service",
        ];
        let edges = vec![
            // Front door: search and plan.
            (T::UI_DASHBOARD, T::TRAVEL),
            (T::UI_DASHBOARD, T::TRAVEL_PLAN),
            (T::UI_DASHBOARD, T::PRESERVE),
            (T::UI_DASHBOARD, T::USER),
            // Travel search fans into the data services.
            (T::TRAVEL, T::ROUTE),
            (T::TRAVEL, T::TRAIN),
            (T::TRAVEL, T::TICKET_INFO),
            (T::TRAVEL, T::SEAT),
            (T::TRAVEL_PLAN, T::TRAVEL),
            (T::TRAVEL_PLAN, T::ROUTE),
            (T::TICKET_INFO, T::BASIC),
            (T::BASIC, T::STATION),
            (T::BASIC, T::TRAIN),
            (T::BASIC, T::ROUTE),
            (T::BASIC, T::PRICE),
            (T::SEAT, T::CONFIG),
            (T::SEAT, T::ORDER),
            // The booking chain.
            (T::PRESERVE, T::CONTACTS),
            (T::PRESERVE, T::SECURITY),
            (T::PRESERVE, T::TICKET_INFO),
            (T::PRESERVE, T::SEAT),
            (T::PRESERVE, T::ORDER),
            (T::PRESERVE, T::FOOD),
            (T::PRESERVE, T::ASSURANCE),
            (T::PRESERVE, T::CONSIGN),
            (T::PRESERVE, T::USER),
            (T::ORDER, T::INSIDE_PAYMENT),
            (T::INSIDE_PAYMENT, T::PAYMENT),
            (T::INSIDE_PAYMENT, T::NOTIFICATION),
            (T::SECURITY, T::ORDER),
            // Account plumbing.
            (T::USER, T::AUTH),
            (T::AUTH, T::VERIFICATION_CODE),
            (T::CONTACTS, T::AUTH),
        ];
        let entries = vec![T::UI_DASHBOARD, T::TRAVEL, T::PRESERVE];
        DependencyDataset::new(names, edges, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sock_shop_is_a_valid_dag() {
        let ds = SockShopDataset::build();
        assert_eq!(ds.len(), 13);
        // front-end is the hub.
        assert!(ds.successors(SockShopDataset::FRONT_END).len() >= 4);
        // DBs are sinks.
        assert!(ds.successors(SockShopDataset::CATALOGUE_DB).is_empty());
        assert!(ds.successors(SockShopDataset::QUEUE_MASTER).is_empty());
    }

    #[test]
    fn train_ticket_is_a_valid_dag_with_deep_chains() {
        let ds = TrainTicketDataset::build();
        assert_eq!(ds.len(), 24);
        // The booking flow admits chains of depth ≥ 5:
        // ui → preserve → order → inside-payment → payment.
        let mut rng = StdRng::seed_from_u64(1);
        let mut max = 0;
        for _ in 0..800 {
            max = max.max(ds.sample_chain(&mut rng, 4, 10).len());
        }
        assert!(max >= 5, "never sampled a deep booking chain (max {max})");
    }

    #[test]
    fn all_datasets_drive_request_sampling() {
        let cfg = RequestConfig::default();
        for (name, ds) in [
            ("sock-shop", SockShopDataset::build()),
            ("train-ticket", TrainTicketDataset::build()),
        ] {
            let mut rng = StdRng::seed_from_u64(2);
            let reqs = ds.sample_requests(&mut rng, 30, 8, &cfg);
            assert_eq!(reqs.len(), 30, "{name}");
            for r in &reqs {
                assert!(!r.chain.is_empty());
                for w in r.chain.windows(2) {
                    assert!(
                        ds.successors(w[0].0).contains(&w[1].0),
                        "{name}: chain uses non-edge"
                    );
                }
            }
        }
    }

    #[test]
    fn catalogs_have_distinct_names() {
        for ds in [SockShopDataset::build(), TrainTicketDataset::build()] {
            let mut names = ds.names().to_vec();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), ds.len());
        }
    }
}

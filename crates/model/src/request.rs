//! User requests `u_h = {M_h, E_h}`.
//!
//! Each request is a directed *chain* of microservices (the paper models
//! requests as chains reflecting typical processing workflows). A request
//! carries the data volume uploaded by the user (`r_in`), the per-dependency
//! data flows (`r_{m_i → m_j}` for each edge of `E_h`) and the result volume
//! returned to the user (`r_out`).

use crate::service::ServiceId;
use serde::{Deserialize, Serialize};
use socl_net::NodeId;

/// Dense identifier of a user request (`u_h` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

impl UserId {
    /// Index into per-user vectors.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// One user request `u_h`: a chain of microservices plus data volumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserRequest {
    /// Identifier.
    pub id: UserId,
    /// The edge server the user is associated with — `f(u_h)`, i.e. the node
    /// whose coverage area the user currently sits in (`u_h ∈ U_k`).
    pub location: NodeId,
    /// The microservice chain `M_h`, in invocation order. Never empty;
    /// services may repeat across different requests but not within a chain.
    pub chain: Vec<ServiceId>,
    /// Data flow `r_{m_i → m_j}` (GB) for each consecutive pair of the chain;
    /// `edge_data.len() == chain.len() - 1`.
    pub edge_data: Vec<f64>,
    /// Upload volume `r_in^h` (GB) from the user to the first service host.
    pub r_in: f64,
    /// Result volume `r_out^h` (GB) returned from the last service host.
    pub r_out: f64,
    /// Per-request completion-time tolerance `𝒟_h^max` (seconds).
    pub d_max: f64,
}

impl UserRequest {
    /// Validated constructor.
    ///
    /// # Panics
    /// Panics when the chain is empty, contains duplicates, or `edge_data`
    /// has the wrong length.
    pub fn new(
        id: UserId,
        location: NodeId,
        chain: Vec<ServiceId>,
        edge_data: Vec<f64>,
        r_in: f64,
        r_out: f64,
        d_max: f64,
    ) -> Self {
        assert!(!chain.is_empty(), "request {id} has an empty chain");
        assert_eq!(
            edge_data.len(),
            chain.len() - 1,
            "request {id}: edge_data must have chain.len()-1 entries"
        );
        let mut sorted = chain.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            chain.len(),
            "request {id}: chain repeats a microservice"
        );
        Self {
            id,
            location,
            chain,
            edge_data,
            r_in,
            r_out,
            d_max,
        }
    }

    /// Chain length `|M_h|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.chain.len()
    }

    /// Always false (chains are non-empty by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The first microservice of the chain.
    #[inline]
    pub fn first_service(&self) -> ServiceId {
        self.chain[0]
    }

    /// The last microservice of the chain.
    #[inline]
    pub fn last_service(&self) -> ServiceId {
        // LINT-ALLOW(L2-panic-free): `UserRequest::new` asserts the chain is
        // non-empty, so `last()` cannot fail on a constructed request. Also
        // the T2-panic-reach barrier: callers of `last_service` are clean.
        *self.chain.last().unwrap()
    }

    /// True if the chain invokes `m`.
    pub fn uses(&self, m: ServiceId) -> bool {
        self.chain.contains(&m)
    }

    /// Position of `m` within the chain, if invoked.
    pub fn position_of(&self, m: ServiceId) -> Option<usize> {
        self.chain.iter().position(|&s| s == m)
    }

    /// The dependency edges `E_h` as `(from, to, data)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (ServiceId, ServiceId, f64)> + '_ {
        self.chain
            .windows(2)
            .zip(&self.edge_data)
            .map(|(w, &r)| (w[0], w[1], r))
    }

    /// True if `a` and `b` are *dependency-conflicted* for this request:
    /// the chain contains the directed edge `a → b` or `b → a`
    /// (used by Algorithm 3's parallel-combination filter).
    pub fn dependency_conflicted(&self, a: ServiceId, b: ServiceId) -> bool {
        self.chain
            .windows(2)
            .any(|w| (w[0] == a && w[1] == b) || (w[0] == b && w[1] == a))
    }
}

/// Parameters for random request generation (ranges follow Section V.A).
#[derive(Debug, Clone)]
pub struct RequestConfig {
    /// Chain length range (inclusive). The dataset may cap the upper end.
    pub chain_len: (usize, usize),
    /// Per-edge data flow range in GB.
    pub edge_data: (f64, f64),
    /// Upload volume range in GB.
    pub r_in: (f64, f64),
    /// Result volume range in GB.
    pub r_out: (f64, f64),
    /// Completion-time tolerance `𝒟_h^max` in seconds.
    pub d_max: f64,
}

impl Default for RequestConfig {
    fn default() -> Self {
        Self {
            chain_len: (3, 8),
            edge_data: (0.2, 1.0),
            r_in: (0.1, 0.5),
            r_out: (0.05, 0.25),
            d_max: 10.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> UserRequest {
        UserRequest::new(
            UserId(0),
            NodeId(2),
            vec![ServiceId(0), ServiceId(1), ServiceId(2)],
            vec![1.0, 2.0],
            0.5,
            0.25,
            10.0,
        )
    }

    #[test]
    fn edges_pair_chain_with_data() {
        let r = req();
        let edges: Vec<_> = r.edges().collect();
        assert_eq!(
            edges,
            vec![
                (ServiceId(0), ServiceId(1), 1.0),
                (ServiceId(1), ServiceId(2), 2.0)
            ]
        );
    }

    #[test]
    fn first_last_positions() {
        let r = req();
        assert_eq!(r.first_service(), ServiceId(0));
        assert_eq!(r.last_service(), ServiceId(2));
        assert_eq!(r.position_of(ServiceId(1)), Some(1));
        assert_eq!(r.position_of(ServiceId(9)), None);
        assert!(r.uses(ServiceId(2)));
        assert!(!r.uses(ServiceId(3)));
    }

    #[test]
    fn dependency_conflicts_are_adjacent_pairs_only() {
        let r = req();
        assert!(r.dependency_conflicted(ServiceId(0), ServiceId(1)));
        assert!(r.dependency_conflicted(ServiceId(2), ServiceId(1)));
        assert!(!r.dependency_conflicted(ServiceId(0), ServiceId(2)));
    }

    #[test]
    #[should_panic(expected = "empty chain")]
    fn empty_chain_rejected() {
        UserRequest::new(UserId(0), NodeId(0), vec![], vec![], 0.1, 0.1, 1.0);
    }

    #[test]
    #[should_panic(expected = "edge_data")]
    fn wrong_edge_data_len_rejected() {
        UserRequest::new(
            UserId(0),
            NodeId(0),
            vec![ServiceId(0), ServiceId(1)],
            vec![],
            0.1,
            0.1,
            1.0,
        );
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn duplicate_service_rejected() {
        UserRequest::new(
            UserId(0),
            NodeId(0),
            vec![ServiceId(0), ServiceId(0)],
            vec![1.0],
            0.1,
            0.1,
            1.0,
        );
    }

    #[test]
    fn singleton_chain_is_valid() {
        let r = UserRequest::new(
            UserId(7),
            NodeId(1),
            vec![ServiceId(4)],
            vec![],
            0.1,
            0.1,
            1.0,
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.first_service(), r.last_service());
        assert_eq!(r.edges().count(), 0);
    }
}

//! Scenario and placement persistence (JSON snapshots).
//!
//! Experiments become shareable and replayable when the exact problem
//! instance can be written to disk: a [`ScenarioSnapshot`] captures the
//! substrate (servers + links), the catalog, the request set, and the
//! objective knobs; `restore` rebuilds the [`Scenario`] (recomputing the
//! path cache). [`PlacementSnapshot`] does the same for a deployment
//! decision, so a solver run on machine A can be evaluated on machine B.

use crate::placement::Placement;
use crate::request::UserRequest;
use crate::scenario::Scenario;
use crate::service::{Microservice, ServiceCatalog, ServiceId};
use serde::{Deserialize, Serialize};
use socl_net::{AllPairs, EdgeNetwork, EdgeServer, LinkParams, NodeId};

/// A self-contained, serializable problem instance.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ScenarioSnapshot {
    /// Format version for forward compatibility.
    pub version: u32,
    pub servers: Vec<EdgeServer>,
    /// `(a, b, params)` per undirected link.
    pub links: Vec<(u32, u32, LinkParams)>,
    pub catalog: Vec<Microservice>,
    pub requests: Vec<UserRequest>,
    pub lambda: f64,
    pub budget: f64,
    pub latency_scale: f64,
    pub cloud_penalty: f64,
}

impl ScenarioSnapshot {
    /// Capture a scenario.
    pub fn capture(sc: &Scenario) -> Self {
        Self {
            version: 1,
            servers: sc
                .net
                .node_ids()
                .map(|k| sc.net.server(k).clone())
                .collect(),
            links: sc
                .net
                .links()
                .iter()
                .map(|l| (l.a.0, l.b.0, l.params))
                .collect(),
            catalog: sc
                .catalog
                .ids()
                .map(|m| sc.catalog.get(m).clone())
                .collect(),
            requests: sc.requests.clone(),
            lambda: sc.lambda,
            budget: sc.budget,
            latency_scale: sc.latency_scale,
            cloud_penalty: sc.cloud_penalty,
        }
    }

    /// Rebuild the scenario (recomputes the all-pairs cache).
    ///
    /// # Errors
    /// Returns a message when the snapshot references out-of-range nodes or
    /// services, or uses an unknown format version.
    pub fn restore(&self) -> Result<Scenario, String> {
        if self.version != 1 {
            return Err(format!("unsupported snapshot version {}", self.version));
        }
        let mut net = EdgeNetwork::new();
        for s in &self.servers {
            net.push_server(s.clone());
        }
        let n = net.node_count() as u32;
        for &(a, b, params) in &self.links {
            if a >= n || b >= n || a == b {
                return Err(format!("invalid link ({a}, {b})"));
            }
            net.add_link(NodeId(a), NodeId(b), params);
        }
        let catalog = ServiceCatalog::from_services(self.catalog.clone());
        for r in &self.requests {
            if r.location.0 >= n {
                return Err(format!("request {} located off-net", r.id));
            }
            for &m in &r.chain {
                if m.idx() >= catalog.len() {
                    return Err(format!("request {} uses unknown service {m}", r.id));
                }
            }
        }
        let ap = AllPairs::build(&net);
        Ok(Scenario {
            net,
            ap,
            catalog,
            requests: self.requests.clone(),
            lambda: self.lambda,
            budget: self.budget,
            latency_scale: self.latency_scale,
            cloud_penalty: self.cloud_penalty,
        })
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        // LINT-ALLOW(L2-panic-free): serializing a plain in-memory struct
        // (no maps with non-string keys, no custom Serialize impls) cannot
        // fail; an Err here is a serde_json bug worth aborting on. Doubles
        // as the T2-panic-reach barrier for every caller of `to_json`.
        serde_json::to_string_pretty(self).expect("snapshot serialization cannot fail")
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// A serializable deployment decision.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PlacementSnapshot {
    pub services: usize,
    pub nodes: usize,
    /// Deployed `(service, node)` pairs.
    pub deployed: Vec<(u32, u32)>,
}

impl PlacementSnapshot {
    /// Capture a placement.
    pub fn capture(p: &Placement) -> Self {
        Self {
            services: p.services(),
            nodes: p.nodes(),
            deployed: p.iter_deployed().map(|(m, k)| (m.0, k.0)).collect(),
        }
    }

    /// Rebuild the placement.
    ///
    /// # Errors
    /// Returns a message on out-of-range pairs.
    pub fn restore(&self) -> Result<Placement, String> {
        let mut p = Placement::empty(self.services, self.nodes);
        for &(m, k) in &self.deployed {
            if m as usize >= self.services || k as usize >= self.nodes {
                return Err(format!("deployed pair ({m}, {k}) out of range"));
            }
            p.set(ServiceId(m), NodeId(k), true);
        }
        Ok(p)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        // LINT-ALLOW(L2-panic-free): serializing a plain-old-data struct of
        // integers cannot fail; an Err here would mean serde_json itself is
        // broken, which no caller can meaningfully handle. Doubles as the
        // T2-panic-reach barrier for every caller of `to_json`.
        serde_json::to_string_pretty(self).expect("snapshot serialization cannot fail")
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::evaluate;
    use crate::scenario::ScenarioConfig;

    #[test]
    fn scenario_roundtrips_through_json() {
        let sc = ScenarioConfig::paper(8, 20).build(3);
        let snap = ScenarioSnapshot::capture(&sc);
        let json = snap.to_json();
        let back = ScenarioSnapshot::from_json(&json).unwrap();
        assert_eq!(snap, back);
        let restored = back.restore().unwrap();
        assert_eq!(restored.nodes(), sc.nodes());
        assert_eq!(restored.users(), sc.users());
        assert_eq!(restored.requests, sc.requests);
        // The rebuilt path cache gives identical latency weights.
        for a in sc.net.node_ids() {
            for b in sc.net.node_ids() {
                assert!(
                    (sc.ap.latency_weight(a, b) - restored.ap.latency_weight(a, b)).abs() < 1e-12
                );
            }
        }
    }

    #[test]
    fn evaluation_is_identical_after_restore() {
        let sc = ScenarioConfig::paper(8, 25).build(4);
        let p = Placement::full(sc.services(), sc.nodes());
        let before = evaluate(&sc, &p);
        let restored = ScenarioSnapshot::capture(&sc).restore().unwrap();
        let after = evaluate(&restored, &p);
        assert_eq!(before.objective, after.objective);
        assert_eq!(before.per_request, after.per_request);
    }

    #[test]
    fn placement_roundtrips() {
        let sc = ScenarioConfig::paper(6, 15).build(5);
        let mut p = Placement::empty(sc.services(), sc.nodes());
        p.set(ServiceId(2), NodeId(1), true);
        p.set(ServiceId(0), NodeId(5), true);
        let snap = PlacementSnapshot::capture(&p);
        let restored = PlacementSnapshot::from_json(&snap.to_json())
            .unwrap()
            .restore()
            .unwrap();
        assert_eq!(p, restored);
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        assert!(ScenarioSnapshot::from_json("{not json").is_err());
        let sc = ScenarioConfig::paper(4, 5).build(6);
        let mut snap = ScenarioSnapshot::capture(&sc);
        snap.links
            .push((0, 99, socl_net::LinkParams::from_rate(1.0)));
        assert!(snap.restore().is_err());

        let mut psnap = PlacementSnapshot::capture(&Placement::empty(2, 2));
        psnap.deployed.push((5, 0));
        assert!(psnap.restore().is_err());
    }

    #[test]
    fn version_gate() {
        let sc = ScenarioConfig::paper(4, 5).build(7);
        let mut snap = ScenarioSnapshot::capture(&sc);
        snap.version = 99;
        assert!(snap.restore().is_err());
    }
}

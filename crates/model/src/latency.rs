//! The completion-time model `𝒟_h` (Section III.C, Eq. 2).
//!
//! For a request `u_h` whose chain positions are served by the node sequence
//! `route = [loc(m_1), …, loc(m_n)]`:
//!
//! ```text
//! 𝒟_h = d_in + Σ_j d_c(m_j) + Σ_j d_l(e_{m_j → m_{j+1}}) + d_out
//! d_in  = 1[f(u)≠loc(m_1)] · r_in · w(f(u), loc(m_1))        (latency path)
//! d_c   = q(m_j) / c(loc(m_j))
//! d_l   = r_{j→j+1} · w(loc(m_j), loc(m_{j+1}))              (latency path)
//! d_out = 1[loc(m_n)≠f(u)] · r_out · w*(loc(m_n), f(u))      (min-hop π*)
//! ```
//!
//! where `w` is the per-GB weight of the latency-optimal path and `w*` the
//! weight along the minimum-hop path (the paper's `π*` return route).
//!
//! Note on `d_out`: the paper's formula writes `π*(v_d, v_s)`; since `d_out`
//! is described as "the time taken to return the results to the user", we
//! return to the user's associated node `f(u_h)`, which coincides with the
//! paper's notation whenever the user is attached at the chain head.

use crate::request::UserRequest;
use crate::service::ServiceCatalog;
use socl_net::{AllPairs, EdgeNetwork, NodeId};

/// The four additive components of `𝒟_h`, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CompletionBreakdown {
    /// Upload delay `d_in`, seconds.
    pub d_in_s: f64,
    /// Total processing delay `Σ d_c`, seconds.
    pub compute_s: f64,
    /// Total inter-service transfer delay `Σ d_l`, seconds.
    pub transfer_s: f64,
    /// Result return delay `d_out`, seconds.
    pub d_out_s: f64,
}

impl CompletionBreakdown {
    /// The completion time `𝒟_h = d_in + Σd_c + Σd_l + d_out`.
    #[inline]
    pub fn total(&self) -> f64 {
        self.d_in_s + self.compute_s + self.transfer_s + self.d_out_s
    }
}

/// Compute `𝒟_h` for `request` served along `route`.
///
/// `route` must contain one hosting node per chain position.
///
/// # Panics
/// Panics if `route.len() != request.chain.len()`.
pub fn completion_time(
    request: &UserRequest,
    route: &[NodeId],
    net: &EdgeNetwork,
    ap: &AllPairs,
    catalog: &ServiceCatalog,
) -> CompletionBreakdown {
    assert_eq!(
        route.len(),
        request.chain.len(),
        "route length must match chain length for {}",
        request.id
    );
    // d_in: user node → first service host, latency-optimal path.
    let mut b = CompletionBreakdown {
        d_in_s: ap.transfer_time(request.location, route[0], request.r_in),
        ..CompletionBreakdown::default()
    };

    // Compute cycles.
    for (j, &m) in request.chain.iter().enumerate() {
        b.compute_s += catalog.compute_gflop(m) / net.compute_gflops(route[j]);
    }

    // Inter-service transfers.
    for (j, &r_gb) in request.edge_data.iter().enumerate() {
        b.transfer_s += ap.transfer_time(route[j], route[j + 1], r_gb);
    }

    // d_out: last service host → user node along the min-hop return path π*.
    // Chains are non-empty by Request's construction; an empty route yields
    // the partial breakdown (all-zero legs) rather than a panic.
    if let Some(&last) = route.last() {
        b.d_out_s = ap.return_time(last, request.location, request.r_out);
    }

    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::UserId;
    use crate::service::{Microservice, ServiceId};
    use socl_net::{EdgeServer, LinkParams};

    /// Line v0 -10GB/s- v1 -20GB/s- v2; c(v0)=5, c(v1)=10, c(v2)=20.
    fn fixture() -> (EdgeNetwork, AllPairs, ServiceCatalog) {
        let mut net = EdgeNetwork::new();
        net.push_server(EdgeServer::new(5.0, 8.0));
        net.push_server(EdgeServer::new(10.0, 8.0));
        net.push_server(EdgeServer::new(20.0, 8.0));
        net.add_link(NodeId(0), NodeId(1), LinkParams::from_rate(10.0));
        net.add_link(NodeId(1), NodeId(2), LinkParams::from_rate(20.0));
        let ap = AllPairs::build(&net);
        let cat = ServiceCatalog::from_services(vec![
            Microservice::new(100.0, 1.0, 2.0), // m0: q=2
            Microservice::new(100.0, 1.0, 4.0), // m1: q=4
        ]);
        (net, ap, cat)
    }

    fn request() -> UserRequest {
        UserRequest::new(
            UserId(0),
            NodeId(0),
            vec![ServiceId(0), ServiceId(1)],
            vec![2.0], // 2 GB between m0 and m1
            1.0,       // 1 GB up
            0.5,       // 0.5 GB down
            10.0,
        )
    }

    #[test]
    fn all_local_has_no_network_delay() {
        let (net, ap, cat) = fixture();
        let req = request();
        let b = completion_time(&req, &[NodeId(0), NodeId(0)], &net, &ap, &cat);
        assert_eq!(b.d_in_s, 0.0);
        assert_eq!(b.transfer_s, 0.0);
        assert_eq!(b.d_out_s, 0.0);
        // q/c: 2/5 + 4/5
        assert!((b.compute_s - 1.2).abs() < 1e-12);
        assert!((b.total() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn remote_chain_accumulates_each_term() {
        let (net, ap, cat) = fixture();
        let req = request();
        // m0 on v1, m1 on v2.
        let b = completion_time(&req, &[NodeId(1), NodeId(2)], &net, &ap, &cat);
        // d_in: 1 GB over v0→v1 at 10 GB/s = 0.1 s.
        assert!((b.d_in_s - 0.1).abs() < 1e-12);
        // compute: 2/10 + 4/20 = 0.4 s.
        assert!((b.compute_s - 0.4).abs() < 1e-12);
        // transfer: 2 GB over v1→v2 at 20 GB/s = 0.1 s.
        assert!((b.transfer_s - 0.1).abs() < 1e-12);
        // d_out: 0.5 GB back v2→v0: 0.5·(1/20+1/10) = 0.075 s.
        assert!((b.d_out_s - 0.075).abs() < 1e-12);
        assert!((b.total() - 0.675).abs() < 1e-12);
    }

    #[test]
    fn faster_server_reduces_compute_term() {
        let (net, ap, cat) = fixture();
        let req = request();
        let slow = completion_time(&req, &[NodeId(0), NodeId(0)], &net, &ap, &cat);
        // Same placement topology-wise (single node) but on the fast server:
        let mut req2 = req.clone();
        req2.location = NodeId(2);
        let fast = completion_time(&req2, &[NodeId(2), NodeId(2)], &net, &ap, &cat);
        assert!(fast.compute_s < slow.compute_s);
    }

    #[test]
    #[should_panic(expected = "route length")]
    fn mismatched_route_rejected() {
        let (net, ap, cat) = fixture();
        let req = request();
        completion_time(&req, &[NodeId(0)], &net, &ap, &cat);
    }

    #[test]
    fn breakdown_total_is_sum_of_parts() {
        let (net, ap, cat) = fixture();
        let req = request();
        let b = completion_time(&req, &[NodeId(2), NodeId(1)], &net, &ap, &cat);
        assert!((b.total() - (b.d_in_s + b.compute_s + b.transfer_s + b.d_out_s)).abs() < 1e-15);
        assert!(b.total() > 0.0);
    }
}

//! Scenario assembly: one seeded, self-contained problem instance.
//!
//! A [`Scenario`] bundles everything Definition 4's ILP needs — the substrate
//! network with its all-pairs path cache, the microservice catalog, the
//! request set, and the objective/constraint knobs (`λ`, `𝒦^max`,
//! per-request `𝒟^max`, the cloud-fallback penalty). All downstream solvers
//! (SoCL, OPT, baselines, simulator) take a `&Scenario`.

use crate::dataset::{DependencyDataset, EshopDataset};
use crate::request::{RequestConfig, UserRequest};
use crate::service::{ServiceCatalog, ServiceId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use socl_net::{AllPairs, EdgeNetwork, NodeId, TopologyConfig};

/// A complete problem instance.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Substrate topology `G(V, L)`.
    pub net: EdgeNetwork,
    /// Precomputed all-pairs shortest paths over `net`.
    pub ap: AllPairs,
    /// Microservice set `M`.
    pub catalog: ServiceCatalog,
    /// Request set `U`.
    pub requests: Vec<UserRequest>,
    /// Cost/latency trade-off `λ ∈ [0, 1]` in Eq. 3/8.
    pub lambda: f64,
    /// Total provisioning budget `𝒦^max` (Eq. 5).
    pub budget: f64,
    /// Conversion factor from seconds of completion time to objective units
    /// (default 1000: the objective weighs milliseconds against cost units,
    /// which reproduces the magnitude balance of the paper's reported
    /// objective values).
    pub latency_scale: f64,
    /// Completion time charged (in seconds, before `latency_scale`) for a
    /// request that must fall back to the cloud because some chain service
    /// has no edge instance.
    pub cloud_penalty: f64,
}

impl Scenario {
    /// Number of edge servers `|V|`.
    pub fn nodes(&self) -> usize {
        self.net.node_count()
    }

    /// Number of microservices `|M|`.
    pub fn services(&self) -> usize {
        self.catalog.len()
    }

    /// Number of user requests `|U|`.
    pub fn users(&self) -> usize {
        self.requests.len()
    }

    /// `U_k`: requests whose user sits in the coverage area of `k`.
    pub fn users_at(&self, k: NodeId) -> impl Iterator<Item = &UserRequest> + '_ {
        self.requests.iter().filter(move |r| r.location == k)
    }

    /// `𝕌_{v_k}^{m_i}`: requests located at `k` whose chain invokes `m`.
    pub fn users_requesting(
        &self,
        m: ServiceId,
        k: NodeId,
    ) -> impl Iterator<Item = &UserRequest> + '_ {
        self.users_at(k).filter(move |r| r.uses(m))
    }

    /// `|𝕌_{v_k}^{m_i}|`.
    pub fn demand(&self, m: ServiceId, k: NodeId) -> usize {
        self.users_requesting(m, k).count()
    }

    /// `V(m_i)`: nodes hosting at least one request that invokes `m`,
    /// ascending by id.
    pub fn request_nodes(&self, m: ServiceId) -> Vec<NodeId> {
        self.net
            .node_ids()
            .filter(|&k| self.requests.iter().any(|r| r.location == k && r.uses(m)))
            .collect()
    }

    /// Services that appear in at least one request chain.
    pub fn requested_services(&self) -> Vec<ServiceId> {
        self.catalog
            .ids()
            .filter(|&m| self.requests.iter().any(|r| r.uses(m)))
            .collect()
    }

    /// Total demand for `m` across the network.
    pub fn total_demand(&self, m: ServiceId) -> usize {
        self.requests.iter().filter(|r| r.uses(m)).count()
    }
}

/// Seeded scenario generator following the paper's evaluation setup
/// (Section V.A): eshopOnContainers services, [5,20] GFLOP/s servers,
/// [20,80] GB/s links, cost constraints in the thousands.
///
/// ```
/// use socl_model::{evaluate, Placement, ScenarioConfig};
///
/// let sc = ScenarioConfig::paper(10, 40).build(42);
/// assert_eq!(sc.nodes(), 10);
/// assert_eq!(sc.users(), 40);
///
/// // Evaluating the everything-everywhere placement gives the latency
/// // lower bound at maximum cost:
/// let full = Placement::full(sc.services(), sc.nodes());
/// let ev = evaluate(&sc, &full);
/// assert_eq!(ev.cloud_fallbacks, 0);
/// assert!(ev.cost > sc.budget); // full deployment blows the budget
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Number of edge servers.
    pub nodes: usize,
    /// Number of user requests.
    pub users: usize,
    /// Trade-off weight `λ`.
    pub lambda: f64,
    /// Budget `𝒦^max` (paper: 5000–8000).
    pub budget: f64,
    /// Topology generation parameters (node count is overridden by `nodes`).
    pub topology: TopologyConfig,
    /// Request chain/data parameters.
    pub requests: RequestConfig,
    /// Latency scale (seconds → objective units).
    pub latency_scale: f64,
    /// Cloud fallback penalty, seconds.
    pub cloud_penalty: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            nodes: 10,
            users: 40,
            lambda: 0.5,
            budget: 6000.0,
            topology: TopologyConfig::default(),
            requests: RequestConfig::default(),
            latency_scale: 1000.0,
            cloud_penalty: 5.0,
        }
    }
}

impl ScenarioConfig {
    /// The paper's default setup with `nodes` servers and `users` requests.
    pub fn paper(nodes: usize, users: usize) -> Self {
        Self {
            nodes,
            users,
            ..Self::default()
        }
    }

    /// Build the scenario from the eshopOnContainers dataset with `seed`.
    pub fn build(&self, seed: u64) -> Scenario {
        self.build_with_dataset(&EshopDataset::build(), seed)
    }

    /// Build with an arbitrary dependency dataset.
    pub fn build_with_dataset(&self, dataset: &DependencyDataset, seed: u64) -> Scenario {
        let mut topo = self.topology.clone();
        topo.nodes = self.nodes;
        let net = topo.build(seed);
        let ap = AllPairs::build(&net);
        let mut rng =
            StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
        let catalog = dataset.catalog(&mut rng);
        let requests = dataset.sample_requests(&mut rng, self.users, self.nodes, &self.requests);
        Scenario {
            net,
            ap,
            catalog,
            requests,
            lambda: self.lambda,
            budget: self.budget,
            latency_scale: self.latency_scale,
            cloud_penalty: self.cloud_penalty,
        }
    }

    /// Build with an explicit catalog and request set (used by tests and the
    /// simulator, which regenerates requests per time slot).
    pub fn assemble(
        &self,
        net: EdgeNetwork,
        catalog: ServiceCatalog,
        requests: Vec<UserRequest>,
    ) -> Scenario {
        let ap = AllPairs::build(&net);
        Scenario {
            net,
            ap,
            catalog,
            requests,
            lambda: self.lambda,
            budget: self.budget,
            latency_scale: self.latency_scale,
            cloud_penalty: self.cloud_penalty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_consistent_scenario() {
        let sc = ScenarioConfig::paper(10, 40).build(1);
        assert_eq!(sc.nodes(), 10);
        assert_eq!(sc.users(), 40);
        assert_eq!(sc.services(), 12);
        for r in &sc.requests {
            assert!(r.location.0 < 10);
            for &m in &r.chain {
                assert!(m.idx() < sc.services());
            }
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = ScenarioConfig::paper(8, 20).build(9);
        let b = ScenarioConfig::paper(8, 20).build(9);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.net.link_count(), b.net.link_count());
        for m in a.catalog.ids() {
            assert_eq!(a.catalog.get(m), b.catalog.get(m));
        }
    }

    #[test]
    fn demand_bookkeeping_is_consistent() {
        let sc = ScenarioConfig::paper(10, 60).build(2);
        for m in sc.catalog.ids() {
            // Sum of per-node demand equals total demand.
            let sum: usize = sc.net.node_ids().map(|k| sc.demand(m, k)).sum();
            assert_eq!(sum, sc.total_demand(m));
            // request_nodes are exactly nodes with positive demand.
            let nodes = sc.request_nodes(m);
            for k in sc.net.node_ids() {
                assert_eq!(nodes.contains(&k), sc.demand(m, k) > 0);
            }
        }
    }

    #[test]
    fn users_at_partitions_requests() {
        let sc = ScenarioConfig::paper(10, 50).build(3);
        let total: usize = sc.net.node_ids().map(|k| sc.users_at(k).count()).sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn requested_services_subset_of_catalog() {
        let sc = ScenarioConfig::paper(10, 30).build(4);
        let reqd = sc.requested_services();
        assert!(!reqd.is_empty());
        assert!(reqd.len() <= sc.services());
        for m in &reqd {
            assert!(sc.total_demand(*m) > 0);
        }
    }
}

//! Small statistics helpers shared by harnesses and reports.
//!
//! Kept in the model crate so downstream consumers (benches, simulator
//! summaries, EXPERIMENTS.md generators) agree on one set of definitions.

use socl_net::fcmp;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Median of a slice (not required to be sorted); 0 for an empty slice.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    fcmp::sort_f64s(&mut v);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// `p`-quantile (0 ≤ p ≤ 1) by nearest-rank on a copy; 0 for empty input.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    fcmp::sort_f64s(&mut v);
    let idx = ((v.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
    v[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        // Population σ of {2, 4, 4, 4, 5, 5, 7, 9} is 2.
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn percentile_bounds() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 1.0), 50.0);
        assert_eq!(percentile(&v, 0.5), 30.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn percentile_is_order_insensitive() {
        let a = [5.0, 1.0, 9.0, 3.0];
        let b = [9.0, 3.0, 5.0, 1.0];
        assert_eq!(percentile(&a, 0.75), percentile(&b, 0.75));
    }
}

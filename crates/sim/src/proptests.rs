//! Property tests for the simulator and the testbed emulator.

use crate::faults::{FaultPlan, FaultSchedule, Targeting};
use crate::policy::Policy;
use crate::testbed::{run_testbed, RetryPolicy, TestbedConfig};
use proptest::prelude::*;
use socl_core::SoclConfig;
use socl_model::{evaluate, Placement, Scenario, ScenarioConfig};

use crate::online::{OnlineConfig, OnlineSimulator};
use crate::recovery::{Checkpoint, SlotMetrics};

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (6usize..=12, 10usize..=40, any::<u64>())
        .prop_map(|(nodes, users, seed)| ScenarioConfig::paper(nodes, users).build(seed))
}

/// A 5-slot online config exercising failure injection (and optionally
/// the control plane with mid-slot crashes + repair) — small enough for
/// property-test case counts, rich enough to churn every checkpoint field.
fn small_online_cfg(seed: u64, scaled: bool) -> OnlineConfig {
    OnlineConfig {
        slots: 5,
        users: 12,
        nodes: 6,
        fail_prob: 0.3,
        recover_prob: 0.4,
        autoscale: scaled.then(|| socl_autoscale::AutoscaleConfig {
            min_replicas: 1,
            stable_window: 8.0,
            panic_window: 2.0,
            scale_interval: 1.0,
            down_cooldown: 2.0,
            keep_alive: socl_autoscale::KeepAlivePolicy::Fixed(2.0),
            ..socl_autoscale::AutoscaleConfig::default()
        }),
        mid_slot_fail_prob: if scaled { 0.4 } else { 0.0 },
        repair: scaled,
        seed,
        ..OnlineConfig::default()
    }
}

/// Step `sim` to its horizon, collecting the deterministic metrics.
fn drain_metrics(sim: &mut OnlineSimulator, policy: &Policy) -> Vec<SlotMetrics> {
    let mut out = Vec::new();
    while sim.next_slot() < 5 {
        let r = sim.step(policy, &mut |_, _| None);
        out.push(SlotMetrics::of(&r));
    }
    out
}

/// A fault schedule of arbitrary intensity and targeting against the
/// given scenario/placement pair.
fn arb_faults(
    sc: &Scenario,
    placement: &Placement,
    epochs: usize,
    seed: u64,
    level: f64,
    mode: u8,
) -> FaultSchedule {
    let horizon = epochs as f64 * TestbedConfig::default().epoch_secs;
    let targeting = match mode % 3 {
        0 => Targeting::Random,
        1 => Targeting::Critical,
        _ => Targeting::NonCritical,
    };
    FaultPlan::at_intensity(horizon, level)
        .with_targeting(targeting)
        .generate(&sc.net, placement, sc.users(), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Testbed latencies dominate unloaded DP latencies per request: the
    /// emulator adds queueing and cold starts on top of the same routes, so
    /// no request can finish faster than its unloaded completion time.
    #[test]
    fn testbed_dominates_unloaded_latency(sc in arb_scenario(), seed in any::<u64>()) {
        let placement = Policy::Socl(SoclConfig::default()).place(&sc, 0);
        let ev = evaluate(&sc, &placement);
        let cfg = TestbedConfig { seed, ..TestbedConfig::default() };
        let res = run_testbed(&sc, &placement, &cfg);
        prop_assert_eq!(res.fallbacks, ev.cloud_fallbacks);
        for (measured, unloaded) in res.per_request.iter().zip(&ev.per_request) {
            if let Some(m) = measured {
                prop_assert!(
                    *m >= unloaded - 1e-9,
                    "testbed {m} below unloaded bound {unloaded}"
                );
            }
        }
    }

    /// Longer epochs (lighter load) can only reduce queueing: the mean
    /// latency with double the epoch length is no larger.
    #[test]
    fn lighter_load_reduces_queueing(sc in arb_scenario()) {
        let placement = Policy::Jdr.place(&sc, 0);
        let tight = run_testbed(&sc, &placement, &TestbedConfig {
            epoch_secs: 10.0, cold_start: 0.0, ..TestbedConfig::default()
        });
        let loose = run_testbed(&sc, &placement, &TestbedConfig {
            epoch_secs: 1000.0, cold_start: 0.0, ..TestbedConfig::default()
        });
        prop_assert!(loose.mean <= tight.mean + 1e-9,
            "spreading arrivals raised latency: {} vs {}", loose.mean, tight.mean);
    }

    /// Conservation: every issued request ends in exactly one outcome —
    /// completed, degraded to the cloud mid-chain, dropped, or a cloud
    /// fallback — under any fault schedule, targeting, and retry policy.
    #[test]
    fn faults_conserve_requests(
        sc in arb_scenario(),
        fseed in any::<u64>(),
        tseed in any::<u64>(),
        level in 0.0f64..=2.0,
        mode in any::<u8>(),
        retries in any::<bool>(),
        degrade in any::<bool>(),
    ) {
        let placement = Policy::Jdr.place(&sc, 0);
        let epochs = 2usize;
        let cfg = TestbedConfig {
            epochs,
            seed: tseed,
            faults: arb_faults(&sc, &placement, epochs, fseed, level, mode),
            retry: if retries { RetryPolicy::resilient() } else { RetryPolicy::default() },
            degrade_to_cloud: degrade,
            ..TestbedConfig::default()
        };
        let res = run_testbed(&sc, &placement, &cfg);
        prop_assert_eq!(
            res.completed + res.degraded + res.dropped + res.fallbacks,
            res.issued,
            "conservation violated: {} + {} + {} + {} != {}",
            res.completed, res.degraded, res.dropped, res.fallbacks, res.issued
        );
        prop_assert!(res.availability >= 0.0 && res.availability <= 1.0);
        // Measured latencies are only recorded for requests that ran.
        let measured = res.per_request.iter().filter(|r| r.is_some()).count();
        prop_assert!(measured <= res.issued);
    }

    /// Determinism: the same scenario, placement, fault schedule, and seed
    /// reproduce the identical result, field for field — retries, hedging
    /// jitter, and fault timing all draw from the run's seeded RNG.
    #[test]
    fn faulted_runs_are_deterministic(
        sc in arb_scenario(),
        fseed in any::<u64>(),
        tseed in any::<u64>(),
        level in 0.0f64..=1.5,
        mode in any::<u8>(),
    ) {
        let placement = Policy::Socl(SoclConfig::default()).place(&sc, 0);
        let epochs = 2usize;
        let cfg = TestbedConfig {
            epochs,
            seed: tseed,
            faults: arb_faults(&sc, &placement, epochs, fseed, level, mode),
            retry: RetryPolicy::resilient(),
            ..TestbedConfig::default()
        };
        let a = run_testbed(&sc, &placement, &cfg);
        let b = run_testbed(&sc, &placement, &cfg);
        prop_assert_eq!(a, b);
    }

    /// The control plane adds no entropy: with autoscaling (and admission)
    /// enabled, identical seeds and configs reproduce the identical testbed
    /// result — scaling events, shed counts, replica-seconds and per-request
    /// latencies — at any worker-thread count.
    #[test]
    fn scaling_timelines_are_thread_count_invariant(
        sc in arb_scenario(),
        seed in any::<u64>(),
        predictive in any::<bool>(),
        admission in any::<bool>(),
    ) {
        use socl_autoscale::{AdmissionPolicy, AutoscaleConfig, KeepAlivePolicy, ScalingMode};
        let placement = Policy::Socl(SoclConfig::default()).place(&sc, 0);
        let ac = AutoscaleConfig {
            mode: if predictive { ScalingMode::Predictive } else { ScalingMode::Reactive },
            target_concurrency: 2.0,
            stable_window: 8.0,
            panic_window: 3.0,
            scale_interval: 1.0,
            down_cooldown: 2.0,
            min_replicas: 1,
            max_replicas_per_node: 4,
            keep_alive: KeepAlivePolicy::Fixed(4.0),
            admission: AdmissionPolicy {
                enabled: admission,
                queue_limit: 1.0,
                classes: 3,
                strict_overload: 3.0,
            },
            ..AutoscaleConfig::default()
        };
        let cfg = TestbedConfig {
            epochs: 3,
            seed,
            autoscale: Some(ac),
            ..TestbedConfig::default()
        };
        let run_at = |threads: usize| {
            socl_net::set_threads(threads);
            let r = run_testbed(&sc, &placement, &cfg);
            socl_net::set_threads(0);
            r
        };
        let serial = run_at(1);
        let parallel = run_at(3);
        prop_assert_eq!(serial, parallel);
    }

    /// Crash consistency, part 1: `restore(snapshot(s))` is observationally
    /// the identity for arbitrary mid-run states — a simulator frozen after
    /// any number of slots, round-tripped through the binary checkpoint
    /// format into a *fresh* simulator, continues bit-identically to the
    /// uninterrupted run, with and without the control plane.
    #[test]
    fn snapshot_restore_is_observational_identity(
        seed in any::<u64>(),
        freeze_at in 0usize..=5,
        scaled in any::<bool>(),
    ) {
        let cfg = small_online_cfg(seed, scaled);
        let policy = Policy::Socl(SoclConfig::default());
        let mut golden_sim = OnlineSimulator::new(cfg.clone());
        let golden = drain_metrics(&mut golden_sim, &policy);
        let mut victim = OnlineSimulator::new(cfg.clone());
        for _ in 0..freeze_at {
            victim.step(&policy, &mut |_, _| None);
        }
        let ck = Checkpoint::from_bytes(&victim.snapshot().to_bytes());
        prop_assert!(ck.is_ok(), "checkpoint failed to decode: {:?}", ck.err());
        let Ok(ck) = ck else { return Ok(()) };
        drop(victim);
        let mut thawed = OnlineSimulator::new(cfg);
        prop_assert!(thawed.restore(&ck).is_ok());
        let suffix = drain_metrics(&mut thawed, &policy);
        prop_assert_eq!(&golden[freeze_at..], &suffix[..]);
    }

    /// Crash consistency, part 2: the full kill-and-recover driver matches
    /// the uninterrupted golden run bit for bit — for arbitrary kill-points,
    /// checkpoint cadences and torn-tail modes, at any worker-thread count —
    /// and the invariant auditor stays clean.
    #[test]
    fn crash_recovery_replay_matches_golden(
        seed in any::<u64>(),
        kill_at in 0usize..=5,
        every in 1usize..=4,
        torn in 0u8..3,
        scaled in any::<bool>(),
        threads in 1usize..=3,
    ) {
        use crate::recovery::{run_crash_recovery, RecoveryConfig, TornTail};
        let cfg = small_online_cfg(seed, scaled);
        let policy = Policy::Socl(SoclConfig::default());
        let rcfg = RecoveryConfig {
            checkpoint_every: every,
            kill_at_slot: kill_at,
            torn_tail: match torn {
                1 => TornTail::Garbage,
                2 => TornTail::PartialRecord,
                _ => TornTail::Clean,
            },
        };
        socl_net::set_threads(threads);
        let out = run_crash_recovery(&cfg, &policy, &rcfg);
        socl_net::set_threads(0);
        prop_assert!(out.is_ok(), "recovery failed: {:?}", out.err());
        let Ok(out) = out else { return Ok(()) };
        prop_assert_eq!(out.metric_mismatches, 0,
            "stitched timeline diverged from golden");
        prop_assert_eq!(out.replay_log_mismatches, 0,
            "replay contradicted the durable log");
        prop_assert!(out.audit.is_clean(), "audit: {:?}", out.audit.violations);
        prop_assert_eq!(out.stitched.len(), out.golden.len());
    }

    /// Cold starts only ever add latency.
    #[test]
    fn cold_starts_only_add(sc in arb_scenario()) {
        let placement = Policy::Socl(SoclConfig::default()).place(&sc, 0);
        let with = run_testbed(&sc, &placement, &TestbedConfig {
            cold_start: 1.0, keep_warm: 0.0, ..TestbedConfig::default()
        });
        let without = run_testbed(&sc, &placement, &TestbedConfig {
            cold_start: 0.0, ..TestbedConfig::default()
        });
        prop_assert!(with.mean >= without.mean - 1e-9);
        prop_assert!(with.cold_starts > 0);
    }
}

//! Property tests for the simulator and the testbed emulator.

use crate::policy::Policy;
use crate::testbed::{run_testbed, TestbedConfig};
use proptest::prelude::*;
use socl_core::SoclConfig;
use socl_model::{evaluate, Scenario, ScenarioConfig};

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (6usize..=12, 10usize..=40, any::<u64>())
        .prop_map(|(nodes, users, seed)| ScenarioConfig::paper(nodes, users).build(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Testbed latencies dominate unloaded DP latencies per request: the
    /// emulator adds queueing and cold starts on top of the same routes, so
    /// no request can finish faster than its unloaded completion time.
    #[test]
    fn testbed_dominates_unloaded_latency(sc in arb_scenario(), seed in any::<u64>()) {
        let placement = Policy::Socl(SoclConfig::default()).place(&sc, 0);
        let ev = evaluate(&sc, &placement);
        let cfg = TestbedConfig { seed, ..TestbedConfig::default() };
        let res = run_testbed(&sc, &placement, &cfg);
        prop_assert_eq!(res.fallbacks, ev.cloud_fallbacks);
        for (measured, unloaded) in res.per_request.iter().zip(&ev.per_request) {
            if let Some(m) = measured {
                prop_assert!(
                    *m >= unloaded - 1e-9,
                    "testbed {m} below unloaded bound {unloaded}"
                );
            }
        }
    }

    /// Longer epochs (lighter load) can only reduce queueing: the mean
    /// latency with double the epoch length is no larger.
    #[test]
    fn lighter_load_reduces_queueing(sc in arb_scenario()) {
        let placement = Policy::Jdr.place(&sc, 0);
        let tight = run_testbed(&sc, &placement, &TestbedConfig {
            epoch_secs: 10.0, cold_start: 0.0, ..TestbedConfig::default()
        });
        let loose = run_testbed(&sc, &placement, &TestbedConfig {
            epoch_secs: 1000.0, cold_start: 0.0, ..TestbedConfig::default()
        });
        prop_assert!(loose.mean <= tight.mean + 1e-9,
            "spreading arrivals raised latency: {} vs {}", loose.mean, tight.mean);
    }

    /// Cold starts only ever add latency.
    #[test]
    fn cold_starts_only_add(sc in arb_scenario()) {
        let placement = Policy::Socl(SoclConfig::default()).place(&sc, 0);
        let with = run_testbed(&sc, &placement, &TestbedConfig {
            cold_start: 1.0, keep_warm: 0.0, ..TestbedConfig::default()
        });
        let without = run_testbed(&sc, &placement, &TestbedConfig {
            cold_start: 0.0, ..TestbedConfig::default()
        });
        prop_assert!(with.mean >= without.mean - 1e-9);
        prop_assert!(with.cold_starts > 0);
    }
}

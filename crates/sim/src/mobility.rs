//! User mobility: random-waypoint hopping between base stations.
//!
//! Each slot, every user independently decides (with probability
//! `move_prob`) to relocate. A relocating user prefers a *neighbor* of its
//! current base station (locality of physical movement) with probability
//! `local_bias`, otherwise jumps to a uniformly random station — the mix
//! reproduces both gradual drift and the occasional long hop seen in the
//! paper's trace analysis.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use socl_net::{EdgeNetwork, NodeId};

/// Seeded mobility model over a fixed topology.
///
/// The RNG is `ChaCha12Rng` — the exact generator `rand`'s `StdRng` wraps,
/// so seeded trajectories are unchanged — because its stream position is
/// observable and settable, which lets a checkpoint freeze mobility
/// mid-run (see [`crate::recovery`]).
#[derive(Debug, Clone)]
pub struct MobilityModel {
    /// Probability a user relocates in a given slot.
    pub move_prob: f64,
    /// Probability a relocating user moves to a neighbor station rather
    /// than teleporting to a random one.
    pub local_bias: f64,
    rng: ChaCha12Rng,
}

impl MobilityModel {
    /// Model with the given parameters and seed.
    pub fn new(move_prob: f64, local_bias: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&move_prob), "move_prob out of range");
        assert!((0.0..=1.0).contains(&local_bias), "local_bias out of range");
        Self {
            move_prob,
            local_bias,
            rng: ChaCha12Rng::seed_from_u64(seed),
        }
    }

    /// Paper-like defaults: 40% of users move per 5-minute slot, 70% of
    /// moves are to adjacent stations.
    pub fn paper(seed: u64) -> Self {
        Self::new(0.4, 0.7, seed)
    }

    /// Freeze the RNG state: `(seed, stream, word position)` pin the
    /// generator's exact point in its stream.
    pub fn rng_state(&self) -> ([u8; 32], u64, u128) {
        (
            self.rng.get_seed(),
            self.rng.get_stream(),
            self.rng.get_word_pos(),
        )
    }

    /// Restore the RNG to a frozen state captured by
    /// [`rng_state`](Self::rng_state).
    pub fn restore_rng(&mut self, seed: [u8; 32], stream: u64, word_pos: u128) {
        let mut rng = ChaCha12Rng::from_seed(seed);
        rng.set_stream(stream);
        rng.set_word_pos(word_pos);
        self.rng = rng;
    }

    /// Advance one slot: mutate `locations` in place.
    pub fn step(&mut self, net: &EdgeNetwork, locations: &mut [NodeId]) {
        let n = net.node_count() as u32;
        if n <= 1 {
            return;
        }
        for loc in locations.iter_mut() {
            if self.rng.gen::<f64>() >= self.move_prob {
                continue;
            }
            let neighbors = net.neighbors(*loc);
            if !neighbors.is_empty() && self.rng.gen::<f64>() < self.local_bias {
                let pick = self.rng.gen_range(0..neighbors.len());
                *loc = neighbors[pick].node;
            } else {
                //

                // Teleport anywhere (including possibly staying put).
                *loc = NodeId(self.rng.gen_range(0..n));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_net::TopologyConfig;

    #[test]
    fn movement_respects_probability_extremes() {
        let net = TopologyConfig::paper(10).build(1);
        let start: Vec<NodeId> = (0..50).map(|i| NodeId(i % 10)).collect();

        let mut frozen = MobilityModel::new(0.0, 0.5, 7);
        let mut locs = start.clone();
        frozen.step(&net, &mut locs);
        assert_eq!(locs, start, "move_prob 0 must freeze everyone");

        let mut always = MobilityModel::new(1.0, 0.0, 7);
        let mut locs = start.clone();
        always.step(&net, &mut locs);
        // With teleportation some users almost surely moved.
        assert_ne!(locs, start);
    }

    #[test]
    fn locations_stay_in_range() {
        let net = TopologyConfig::paper(8).build(2);
        let mut model = MobilityModel::paper(3);
        let mut locs: Vec<NodeId> = (0..40).map(|i| NodeId(i % 8)).collect();
        for _ in 0..100 {
            model.step(&net, &mut locs);
            for l in &locs {
                assert!(l.0 < 8);
            }
        }
    }

    #[test]
    fn local_moves_land_on_neighbors() {
        let net = TopologyConfig::paper(10).build(4);
        let mut model = MobilityModel::new(1.0, 1.0, 5);
        let mut locs: Vec<NodeId> = (0..30).map(|i| NodeId(i % 10)).collect();
        let before = locs.clone();
        model.step(&net, &mut locs);
        for (b, a) in before.iter().zip(&locs) {
            if a != b {
                assert!(
                    net.neighbors(*b).iter().any(|nb| nb.node == *a),
                    "{b} -> {a} is not a neighbor hop"
                );
            }
        }
    }

    #[test]
    fn mobility_is_seed_deterministic() {
        let net = TopologyConfig::paper(10).build(6);
        let run = |seed| {
            let mut m = MobilityModel::paper(seed);
            let mut locs: Vec<NodeId> = (0..20).map(|i| NodeId(i % 10)).collect();
            for _ in 0..10 {
                m.step(&net, &mut locs);
            }
            locs
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn per_slot_trajectories_replay_across_seeds() {
        // Stronger than final-state equality: the *entire* slot-by-slot
        // trajectory must replay, for every seed — the online simulator and
        // the control plane's scaling timelines both depend on it.
        let net = TopologyConfig::paper(9).build(11);
        let trace = |seed: u64| -> Vec<Vec<NodeId>> {
            let mut m = MobilityModel::paper(seed);
            let mut locs: Vec<NodeId> = (0..30).map(|i| NodeId(i % 9)).collect();
            (0..25)
                .map(|_| {
                    m.step(&net, &mut locs);
                    locs.clone()
                })
                .collect()
        };
        for seed in 0..5u64 {
            assert_eq!(trace(seed), trace(seed), "seed {seed} did not replay");
            assert_ne!(
                trace(seed),
                trace(seed + 101),
                "seeds {seed} and {} gave identical trajectories",
                seed + 101
            );
        }
    }

    #[test]
    fn population_is_conserved_every_slot() {
        // Users neither appear nor vanish: each slot, the per-station
        // histogram sums to the fixed population and every user sits on a
        // real station.
        let nodes = 7usize;
        let users = 53usize;
        let net = TopologyConfig::paper(nodes).build(13);
        let mut model = MobilityModel::paper(21);
        let mut locs: Vec<NodeId> = (0..users).map(|i| NodeId((i % nodes) as u32)).collect();
        for slot in 0..60 {
            model.step(&net, &mut locs);
            assert_eq!(locs.len(), users, "slot {slot} changed the population");
            let mut histogram = vec![0usize; nodes];
            for l in &locs {
                assert!((l.0 as usize) < nodes, "slot {slot} placed a user off-grid");
                histogram[l.0 as usize] += 1;
            }
            assert_eq!(
                histogram.iter().sum::<usize>(),
                users,
                "slot {slot} lost users"
            );
        }
    }

    #[test]
    fn rng_state_roundtrip_resumes_the_exact_trajectory() {
        let net = TopologyConfig::paper(10).build(6);
        let mut m = MobilityModel::paper(42);
        let mut locs: Vec<NodeId> = (0..25).map(|i| NodeId(i % 10)).collect();
        for _ in 0..7 {
            m.step(&net, &mut locs);
        }
        let (seed, stream, pos) = m.rng_state();
        let frozen_locs = locs.clone();
        // The original keeps walking…
        let mut expect = Vec::new();
        for _ in 0..5 {
            m.step(&net, &mut locs);
            expect.push(locs.clone());
        }
        // …and a model restored from the frozen state walks identically.
        let mut restored = MobilityModel::paper(999); // wrong seed on purpose
        restored.restore_rng(seed, stream, pos);
        let mut locs2 = frozen_locs;
        for step in expect {
            restored.step(&net, &mut locs2);
            assert_eq!(locs2, step, "restored trajectory diverged");
        }
    }

    #[test]
    fn single_node_topology_is_a_noop() {
        let net = TopologyConfig::paper(1).build(0);
        let mut model = MobilityModel::new(1.0, 0.5, 1);
        let mut locs = vec![NodeId(0); 5];
        model.step(&net, &mut locs);
        assert!(locs.iter().all(|&l| l == NodeId(0)));
    }
}

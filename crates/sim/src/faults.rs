//! Deterministic, seedable fault schedules for the testbed and online layers.
//!
//! Serverless *edge* clusters churn: nodes crash and come back, links degrade
//! and flap, warm instances are reaped, and in-flight requests get lost on
//! the radio leg. This module turns that into a first-class, reproducible
//! object — a [`FaultSchedule`]: a time-sorted list of [`FaultEvent`]s that
//! the testbed emulator replays mid-run and the online simulator applies
//! between and within slots.
//!
//! Two generator families:
//!
//! * [`FaultPlan::generate`] with [`Targeting::Random`] — uniformly random
//!   victims (the classic chaos-monkey setup);
//! * criticality-*targeted* schedules ([`Targeting::Critical`] /
//!   [`Targeting::NonCritical`]) driven by `socl-net::resilience` rankings.
//!   `Critical` attacks the highest-stretch components (worst case an
//!   operator should plan for); `NonCritical` fails only components whose
//!   loss neither partitions the network nor stretches latency — the regime
//!   the resilience module's doc-comment promises the simulator exercises.
//!
//! Schedules are plain data: same seed + same plan ⇒ byte-identical events,
//! which is what makes the faulted-testbed determinism proptests possible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socl_model::{Placement, ServiceId};
use socl_net::{link_criticality, node_criticality, EdgeNetwork, NodeId};

/// One injected fault (or the matching recovery).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node's compute goes down: queued and in-flight work on it is
    /// lost. (Its radio/backhaul keeps forwarding — only serving stops.)
    NodeCrash(NodeId),
    /// The node's compute comes back (cold: all its instances restart).
    NodeRecover(NodeId),
    /// The link's bandwidth is divided by `factor` (> 1) until restored.
    LinkDegrade { link: usize, factor: f64 },
    /// The link returns to its nominal bandwidth.
    LinkRestore { link: usize },
    /// One warm instance is reaped (serverless cold-kill): the next request
    /// served by `(service, node)` pays the cold-start penalty again.
    InstanceKill { service: ServiceId, node: NodeId },
    /// The in-flight transfer of `user`'s request is lost at this instant;
    /// the dispatcher sees it as a failed attempt.
    RequestLoss { user: usize },
}

impl FaultKind {
    /// Stable ordinal for deterministic tie-breaking at equal timestamps.
    fn ordinal(&self) -> u8 {
        match self {
            FaultKind::NodeCrash(_) => 0,
            FaultKind::NodeRecover(_) => 1,
            FaultKind::LinkDegrade { .. } => 2,
            FaultKind::LinkRestore { .. } => 3,
            FaultKind::InstanceKill { .. } => 4,
            FaultKind::RequestLoss { .. } => 5,
        }
    }
}

/// A fault at a point in simulated time (seconds from run start).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    pub time: f64,
    pub kind: FaultKind,
}

/// A time-sorted fault schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// The empty schedule (a fault-free run).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from arbitrary events; sorts by time with deterministic
    /// tie-breaks so construction order never leaks into results.
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by(|a, b| {
            a.time
                .total_cmp(&b.time)
                .then(a.kind.ordinal().cmp(&b.kind.ordinal()))
        });
        Self { events }
    }

    /// The sorted events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Summary counters for reporting.
    pub fn stats(&self) -> FaultStats {
        let mut s = FaultStats::default();
        for e in &self.events {
            match e.kind {
                FaultKind::NodeCrash(_) => s.node_crashes += 1,
                FaultKind::NodeRecover(_) => {}
                FaultKind::LinkDegrade { .. } => s.link_degrades += 1,
                FaultKind::LinkRestore { .. } => {}
                FaultKind::InstanceKill { .. } => s.instance_kills += 1,
                FaultKind::RequestLoss { .. } => s.request_losses += 1,
            }
        }
        s
    }
}

/// Event counts by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub node_crashes: usize,
    pub link_degrades: usize,
    pub instance_kills: usize,
    pub request_losses: usize,
}

/// Which components a generated schedule is allowed to hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Targeting {
    /// Uniformly random victims.
    #[default]
    Random,
    /// Attack the most critical components first (top third of the
    /// `socl-net::resilience` stretch ranking — worst-case planning).
    Critical,
    /// Fail only components whose loss neither partitions the network nor
    /// carries latency-critical traffic (bottom third of the ranking,
    /// partition-inducing components excluded).
    NonCritical,
}

/// Knobs for schedule generation. Counts are *expected totals over the
/// horizon*; [`FaultPlan::at_intensity`] scales them together.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Simulated seconds the schedule covers.
    pub horizon: f64,
    /// Node crashes to schedule (each paired with a recovery).
    pub node_crashes: usize,
    /// Mean node downtime in seconds (exponential-ish spread around it).
    pub mean_downtime: f64,
    /// Link degrade/restore flaps to schedule.
    pub link_flaps: usize,
    /// Bandwidth division factor while a link is degraded (> 1).
    pub degrade_factor: f64,
    /// Mean degraded-period length in seconds.
    pub mean_degrade: f64,
    /// Warm instances to cold-kill.
    pub instance_kills: usize,
    /// In-flight request losses to schedule.
    pub request_losses: usize,
    /// Victim selection policy.
    pub targeting: Targeting,
}

impl FaultPlan {
    /// No faults at all over `horizon` seconds.
    pub fn quiet(horizon: f64) -> Self {
        Self {
            horizon,
            node_crashes: 0,
            mean_downtime: 0.0,
            link_flaps: 0,
            degrade_factor: 4.0,
            mean_degrade: 0.0,
            instance_kills: 0,
            request_losses: 0,
            targeting: Targeting::Random,
        }
    }

    /// A moderate plan: a couple of node outages, some link flaps, a few
    /// instance reaps and request losses over the horizon.
    pub fn moderate(horizon: f64) -> Self {
        Self {
            horizon,
            node_crashes: 2,
            mean_downtime: horizon * 0.15,
            link_flaps: 3,
            degrade_factor: 4.0,
            mean_degrade: horizon * 0.2,
            instance_kills: 4,
            request_losses: 3,
            targeting: Targeting::Random,
        }
    }

    /// Scale the moderate plan's event counts by `level` (0.0 = quiet,
    /// 1.0 = moderate, 2.0 = twice as hostile, …).
    pub fn at_intensity(horizon: f64, level: f64) -> Self {
        let base = Self::moderate(horizon);
        let scale = |n: usize| ((n as f64) * level).round() as usize;
        Self {
            node_crashes: scale(base.node_crashes),
            link_flaps: scale(base.link_flaps),
            instance_kills: scale(base.instance_kills),
            request_losses: scale(base.request_losses),
            ..base
        }
    }

    /// Use the given targeting policy.
    pub fn with_targeting(mut self, targeting: Targeting) -> Self {
        self.targeting = targeting;
        self
    }

    /// Generate the schedule for `net` under `placement` (instance kills
    /// pick deployed instances; pass an empty placement to skip them) with
    /// `users` request sources. Deterministic in `seed`.
    pub fn generate(
        &self,
        net: &EdgeNetwork,
        placement: &Placement,
        users: usize,
        seed: u64,
    ) -> FaultSchedule {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_5EED);
        let mut events = Vec::new();

        // --- node crashes (never all nodes down at once) ------------------
        let node_pool = self.node_pool(net);
        let mut down_intervals: Vec<(f64, f64, usize)> = Vec::new();
        if !node_pool.is_empty() {
            for _ in 0..self.node_crashes {
                let t = rng.gen_range(0.0..self.horizon);
                let d = spread(&mut rng, self.mean_downtime);
                // Keep at least one node up: count overlapping outages.
                let overlap = down_intervals
                    .iter()
                    .filter(|(a, b, _)| *a < t + d && t < *b)
                    .count();
                if overlap + 1 >= net.node_count() {
                    continue;
                }
                let &victim = &node_pool[rng.gen_range(0..node_pool.len())];
                // One outage per node at a time.
                if down_intervals
                    .iter()
                    .any(|(a, b, v)| *v == victim.idx() && *a < t + d && t < *b)
                {
                    continue;
                }
                down_intervals.push((t, t + d, victim.idx()));
                events.push(FaultEvent {
                    time: t,
                    kind: FaultKind::NodeCrash(victim),
                });
                events.push(FaultEvent {
                    time: t + d,
                    kind: FaultKind::NodeRecover(victim),
                });
            }
        }

        // --- link flaps ---------------------------------------------------
        let link_pool = self.link_pool(net);
        if !link_pool.is_empty() {
            let mut busy: Vec<(f64, f64, usize)> = Vec::new();
            for _ in 0..self.link_flaps {
                let t = rng.gen_range(0.0..self.horizon);
                let d = spread(&mut rng, self.mean_degrade);
                let link = link_pool[rng.gen_range(0..link_pool.len())];
                if busy
                    .iter()
                    .any(|(a, b, l)| *l == link && *a < t + d && t < *b)
                {
                    continue;
                }
                busy.push((t, t + d, link));
                events.push(FaultEvent {
                    time: t,
                    kind: FaultKind::LinkDegrade {
                        link,
                        factor: self.degrade_factor,
                    },
                });
                events.push(FaultEvent {
                    time: t + d,
                    kind: FaultKind::LinkRestore { link },
                });
            }
        }

        // --- instance cold-kills ------------------------------------------
        let deployed: Vec<(ServiceId, NodeId)> = placement.iter_deployed().collect();
        if !deployed.is_empty() {
            for _ in 0..self.instance_kills {
                let t = rng.gen_range(0.0..self.horizon);
                let (m, k) = deployed[rng.gen_range(0..deployed.len())];
                events.push(FaultEvent {
                    time: t,
                    kind: FaultKind::InstanceKill {
                        service: m,
                        node: k,
                    },
                });
            }
        }

        // --- in-flight request losses -------------------------------------
        if users > 0 {
            for _ in 0..self.request_losses {
                let t = rng.gen_range(0.0..self.horizon);
                let user = rng.gen_range(0..users);
                events.push(FaultEvent {
                    time: t,
                    kind: FaultKind::RequestLoss { user },
                });
            }
        }

        FaultSchedule::from_events(events)
    }

    /// Nodes the plan may crash, per the targeting policy.
    fn node_pool(&self, net: &EdgeNetwork) -> Vec<NodeId> {
        let all: Vec<NodeId> = net.node_ids().collect();
        if all.len() <= 1 {
            return Vec::new();
        }
        match self.targeting {
            Targeting::Random => all,
            Targeting::Critical | Targeting::NonCritical => {
                let ranked = node_criticality(net);
                let take = (ranked.len() / 3).max(1);
                let tagged: Vec<(bool, NodeId)> = ranked
                    .iter()
                    .map(|i| (i.partitions, parse_node_tag(&i.component)))
                    .collect();
                match self.targeting {
                    Targeting::Critical => tagged.iter().take(take).map(|&(_, k)| k).collect(),
                    _ => {
                        // Non-critical: bottom of the ranking, and never a
                        // cut vertex (its loss would partition the net).
                        let safe: Vec<NodeId> = tagged
                            .iter()
                            .rev()
                            .filter(|(partitions, _)| !*partitions)
                            .map(|&(_, k)| k)
                            .collect();
                        safe.into_iter().take(take).collect()
                    }
                }
            }
        }
    }

    /// Links the plan may degrade, per the targeting policy. (Degradation
    /// never partitions, so bridges are only excluded for `NonCritical`,
    /// where the promise is "latency-irrelevant victims only".)
    fn link_pool(&self, net: &EdgeNetwork) -> Vec<usize> {
        let n = net.link_count();
        if n == 0 {
            return Vec::new();
        }
        match self.targeting {
            Targeting::Random => (0..n).collect(),
            Targeting::Critical | Targeting::NonCritical => {
                let ranked = link_criticality(net);
                let take = (n / 3).max(1);
                // Recover each ranked entry's link index by matching tags.
                let tag_of = |idx: usize| {
                    let l = net.links()[idx];
                    format!("link {}-{}", l.a, l.b)
                };
                let index_of = |component: &str| (0..n).find(|&i| tag_of(i) == component);
                let ordered: Vec<(bool, usize)> = ranked
                    .iter()
                    .filter_map(|i| index_of(&i.component).map(|idx| (i.partitions, idx)))
                    .collect();
                match self.targeting {
                    Targeting::Critical => ordered.iter().take(take).map(|&(_, i)| i).collect(),
                    _ => ordered
                        .iter()
                        .rev()
                        .filter(|(partitions, _)| !*partitions)
                        .map(|&(_, i)| i)
                        .take(take)
                        .collect(),
                }
            }
        }
    }
}

/// Parse "node v3" back into `NodeId(3)`; the resilience rankings only
/// expose the display tag.
fn parse_node_tag(component: &str) -> NodeId {
    let digits: String = component.chars().filter(|c| c.is_ascii_digit()).collect();
    NodeId(digits.parse().unwrap_or(0))
}

/// Deterministic positive duration around `mean` (0.5×–1.5× spread).
fn spread(rng: &mut StdRng, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    mean * rng.gen_range(0.5..1.5)
}

/// The schedule pre-digested for the discrete-event loop: per-node merged
/// down intervals plus sorted per-kind event lists.
#[derive(Debug, Clone)]
pub struct FaultTimeline {
    /// Per node: merged, sorted (down_from, up_at) intervals.
    down: Vec<Vec<(f64, f64)>>,
    /// Sorted (time, link, Some(factor) = degrade / None = restore).
    link_changes: Vec<(f64, usize, Option<f64>)>,
    /// Sorted (time, service, node) cold-kills.
    kills: Vec<(f64, ServiceId, NodeId)>,
    /// Sorted (time, user) in-flight losses.
    losses: Vec<(f64, usize)>,
}

impl FaultTimeline {
    /// Digest `schedule` for a cluster of `nodes` nodes.
    pub fn build(schedule: &FaultSchedule, nodes: usize) -> Self {
        let mut raw_down: Vec<Vec<(f64, f64)>> = vec![Vec::new(); nodes];
        let mut open: Vec<Option<f64>> = vec![None; nodes];
        let mut link_changes = Vec::new();
        let mut kills = Vec::new();
        let mut losses = Vec::new();
        for e in schedule.events() {
            match e.kind {
                FaultKind::NodeCrash(k) => {
                    if k.idx() < nodes && open[k.idx()].is_none() {
                        open[k.idx()] = Some(e.time);
                    }
                }
                FaultKind::NodeRecover(k) => {
                    if k.idx() < nodes {
                        if let Some(start) = open[k.idx()].take() {
                            raw_down[k.idx()].push((start, e.time));
                        }
                    }
                }
                FaultKind::LinkDegrade { link, factor } => {
                    link_changes.push((e.time, link, Some(factor)));
                }
                FaultKind::LinkRestore { link } => {
                    link_changes.push((e.time, link, None));
                }
                FaultKind::InstanceKill { service, node } => {
                    kills.push((e.time, service, node));
                }
                FaultKind::RequestLoss { user } => {
                    losses.push((e.time, user));
                }
            }
        }
        // Crashes with no matching recovery stay down forever.
        for (k, start) in open.into_iter().enumerate() {
            if let Some(s) = start {
                raw_down[k].push((s, f64::INFINITY));
            }
        }
        // Merge overlaps per node (events are time-sorted already).
        let down = raw_down
            .into_iter()
            .map(|intervals| {
                let mut merged: Vec<(f64, f64)> = Vec::with_capacity(intervals.len());
                for (a, b) in intervals {
                    match merged.last_mut() {
                        Some((_, pb)) if a <= *pb => *pb = pb.max(b),
                        _ => merged.push((a, b)),
                    }
                }
                merged
            })
            .collect();
        Self {
            down,
            link_changes,
            kills,
            losses,
        }
    }

    /// True when the node's compute is down at `t`.
    pub fn is_down(&self, node: NodeId, t: f64) -> bool {
        self.down[node.idx()].iter().any(|&(a, b)| a <= t && t < b)
    }

    /// The first down interval intersecting the open interval `(t0, t1)`,
    /// if any — used to fail work in flight on a crashing node.
    pub fn down_overlap(&self, node: NodeId, t0: f64, t1: f64) -> Option<(f64, f64)> {
        self.down[node.idx()]
            .iter()
            .find(|&&(a, b)| a < t1 && t0 < b)
            .copied()
    }

    /// Earliest time ≥ `t` when the node is up (∞ if it never recovers).
    pub fn next_up(&self, node: NodeId, t: f64) -> f64 {
        match self.down[node.idx()]
            .iter()
            .find(|&&(a, b)| a <= t && t < b)
        {
            Some(&(_, b)) => b,
            None => t,
        }
    }

    /// True when `(service, node)` was cold-killed inside `(t0, t1)`.
    pub fn killed_between(&self, service: ServiceId, node: NodeId, t0: f64, t1: f64) -> bool {
        self.kills
            .iter()
            .any(|&(t, m, k)| m == service && k == node && t0 < t && t <= t1)
    }

    /// First scheduled loss of `user`'s request inside `(t0, t1)`.
    pub fn loss_between(&self, user: usize, t0: f64, t1: f64) -> Option<f64> {
        self.losses
            .iter()
            .find(|&&(t, u)| u == user && t0 < t && t <= t1)
            .map(|&(t, _)| t)
    }

    /// Sorted link-state change points (times at which transfer times must
    /// be re-derived).
    pub fn link_changes(&self) -> &[(f64, usize, Option<f64>)] {
        &self.link_changes
    }

    /// All scheduled in-flight losses as sorted `(time, user)` pairs; the
    /// testbed consumes each at most once.
    pub fn losses(&self) -> &[(f64, usize)] {
        &self.losses
    }

    /// Mean time-to-repair over node outages *completed* by `horizon`
    /// (0 when nothing finished repairing).
    ///
    /// An outage still open at the horizon — one that straddles it, or a
    /// crash with no scheduled recovery — has no repair time yet, so it
    /// is excluded from the mean rather than clipped into it (clipping
    /// biased the statistic low). Open outages still contribute their
    /// clipped span to [`downtime`](Self::downtime). An outage ending
    /// exactly at the horizon counts as completed.
    pub fn mttr(&self, horizon: f64) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for intervals in &self.down {
            for &(a, b) in intervals {
                if b <= horizon && b > a {
                    total += b - a;
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// Total node-seconds of downtime clipped to `horizon`.
    pub fn downtime(&self, horizon: f64) -> f64 {
        self.down
            .iter()
            .flatten()
            .map(|&(a, b)| (b.min(horizon) - a).max(0.0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_model::ScenarioConfig;
    use socl_net::TopologyConfig;

    fn test_net(nodes: usize) -> EdgeNetwork {
        TopologyConfig::paper(nodes).build(7)
    }

    fn test_placement(nodes: usize) -> Placement {
        let sc = ScenarioConfig::paper(nodes, 20).build(7);
        socl_core::SoclSolver::new().solve(&sc).placement
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let net = test_net(10);
        let p = test_placement(10);
        let plan = FaultPlan::moderate(1200.0);
        let a = plan.generate(&net, &p, 40, 9);
        let b = plan.generate(&net, &p, 40, 9);
        assert_eq!(a, b);
        let c = plan.generate(&net, &p, 40, 10);
        assert_ne!(a, c, "different seeds should give different schedules");
    }

    #[test]
    fn events_are_time_sorted() {
        let net = test_net(10);
        let p = test_placement(10);
        let s = FaultPlan::moderate(1200.0).generate(&net, &p, 40, 3);
        assert!(!s.is_empty());
        for w in s.events().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn quiet_plan_is_empty_and_intensity_scales() {
        let net = test_net(8);
        let p = test_placement(8);
        assert!(FaultPlan::quiet(600.0).generate(&net, &p, 20, 1).is_empty());
        let low = FaultPlan::at_intensity(1200.0, 0.5).generate(&net, &p, 20, 1);
        let high = FaultPlan::at_intensity(1200.0, 3.0).generate(&net, &p, 20, 1);
        assert!(high.len() > low.len(), "{} !> {}", high.len(), low.len());
    }

    #[test]
    fn crashes_pair_with_recoveries() {
        let net = test_net(10);
        let p = test_placement(10);
        let s = FaultPlan::moderate(900.0).generate(&net, &p, 30, 5);
        let stats = s.stats();
        let recoveries = s
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::NodeRecover(_)))
            .count();
        assert_eq!(stats.node_crashes, recoveries);
    }

    #[test]
    fn noncritical_targeting_avoids_cut_vertices_and_bridges() {
        // A line topology: the middle node and both links are critical.
        let mut net = EdgeNetwork::new();
        for _ in 0..3 {
            net.push_server(socl_net::EdgeServer::new(10.0, 8.0));
        }
        net.add_link(NodeId(0), NodeId(1), socl_net::LinkParams::from_rate(50.0));
        net.add_link(NodeId(1), NodeId(2), socl_net::LinkParams::from_rate(50.0));
        let plan = FaultPlan {
            node_crashes: 20,
            link_flaps: 20,
            ..FaultPlan::moderate(1000.0)
        }
        .with_targeting(Targeting::NonCritical);
        let s = plan.generate(&net, &Placement::empty(2, 3), 10, 11);
        for e in s.events() {
            match &e.kind {
                FaultKind::NodeCrash(k) => {
                    assert_ne!(*k, NodeId(1), "non-critical plan crashed the cut vertex");
                }
                FaultKind::LinkDegrade { .. } => {
                    panic!("non-critical plan degraded a bridge link");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn critical_targeting_hits_the_top_ranked_node() {
        let mut net = EdgeNetwork::new();
        for _ in 0..3 {
            net.push_server(socl_net::EdgeServer::new(10.0, 8.0));
        }
        net.add_link(NodeId(0), NodeId(1), socl_net::LinkParams::from_rate(50.0));
        net.add_link(NodeId(1), NodeId(2), socl_net::LinkParams::from_rate(50.0));
        let plan = FaultPlan {
            node_crashes: 10,
            link_flaps: 0,
            instance_kills: 0,
            request_losses: 0,
            ..FaultPlan::moderate(1000.0)
        }
        .with_targeting(Targeting::Critical);
        let s = plan.generate(&net, &Placement::empty(2, 3), 10, 4);
        let crashes: Vec<NodeId> = s
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::NodeCrash(k) => Some(k),
                _ => None,
            })
            .collect();
        assert!(!crashes.is_empty());
        assert!(
            crashes.iter().all(|&k| k == NodeId(1)),
            "critical plan must attack the cut vertex, got {crashes:?}"
        );
    }

    #[test]
    fn timeline_merges_node_intervals_and_reports_mttr() {
        let s = FaultSchedule::from_events(vec![
            FaultEvent {
                time: 10.0,
                kind: FaultKind::NodeCrash(NodeId(0)),
            },
            FaultEvent {
                time: 30.0,
                kind: FaultKind::NodeRecover(NodeId(0)),
            },
            FaultEvent {
                time: 50.0,
                kind: FaultKind::NodeCrash(NodeId(1)),
            },
            FaultEvent {
                time: 90.0,
                kind: FaultKind::NodeRecover(NodeId(1)),
            },
        ]);
        let tl = FaultTimeline::build(&s, 2);
        assert!(tl.is_down(NodeId(0), 15.0));
        assert!(!tl.is_down(NodeId(0), 35.0));
        assert_eq!(tl.next_up(NodeId(1), 60.0), 90.0);
        assert_eq!(tl.next_up(NodeId(1), 95.0), 95.0);
        assert_eq!(tl.down_overlap(NodeId(0), 0.0, 12.0), Some((10.0, 30.0)));
        assert_eq!(tl.down_overlap(NodeId(0), 31.0, 40.0), None);
        // MTTR = mean(20, 40) = 30.
        assert!((tl.mttr(1000.0) - 30.0).abs() < 1e-9);
        assert!((tl.downtime(1000.0) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn mttr_excludes_outages_straddling_the_horizon() {
        // Node 0: completed outage [10, 30) (repair time 20).
        // Node 1: outage [50, 200) straddling the horizon at 100.
        let s = FaultSchedule::from_events(vec![
            FaultEvent {
                time: 10.0,
                kind: FaultKind::NodeCrash(NodeId(0)),
            },
            FaultEvent {
                time: 30.0,
                kind: FaultKind::NodeRecover(NodeId(0)),
            },
            FaultEvent {
                time: 50.0,
                kind: FaultKind::NodeCrash(NodeId(1)),
            },
            FaultEvent {
                time: 200.0,
                kind: FaultKind::NodeRecover(NodeId(1)),
            },
        ]);
        let tl = FaultTimeline::build(&s, 2);
        // The straddler must not be clipped into the mean: mttr = 20, not
        // mean(20, 50) = 35.
        assert!((tl.mttr(100.0) - 20.0).abs() < 1e-9);
        // Once the horizon covers the repair, it joins: mean(20, 150) = 85.
        assert!((tl.mttr(1000.0) - 85.0).abs() < 1e-9);
        // Downtime still clips the straddler: 20 + (100 − 50) = 70.
        assert!((tl.downtime(100.0) - 70.0).abs() < 1e-9);
    }

    #[test]
    fn mttr_counts_an_outage_ending_exactly_at_the_horizon() {
        let s = FaultSchedule::from_events(vec![
            FaultEvent {
                time: 0.0,
                kind: FaultKind::NodeCrash(NodeId(0)),
            },
            FaultEvent {
                time: 300.0,
                kind: FaultKind::NodeRecover(NodeId(0)),
            },
        ]);
        let tl = FaultTimeline::build(&s, 1);
        // Repair lands exactly on the horizon: completed, full duration.
        assert!((tl.mttr(300.0) - 300.0).abs() < 1e-9);
        assert!((tl.downtime(300.0) - 300.0).abs() < 1e-9);
        // One tick earlier the outage is still open: no repairs yet.
        assert_eq!(tl.mttr(299.0), 0.0);
        assert!((tl.downtime(299.0) - 299.0).abs() < 1e-9);
    }

    #[test]
    fn mttr_ignores_a_never_repaired_crash() {
        let s = FaultSchedule::from_events(vec![FaultEvent {
            time: 5.0,
            kind: FaultKind::NodeCrash(NodeId(0)),
        }]);
        let tl = FaultTimeline::build(&s, 1);
        // An unrecovered crash has no time-to-repair at any horizon…
        assert_eq!(tl.mttr(1e12), 0.0);
        // …but its downtime accrues, clipped.
        assert!((tl.downtime(1000.0) - 995.0).abs() < 1e-9);
    }

    #[test]
    fn unrecovered_crash_stays_down_forever() {
        let s = FaultSchedule::from_events(vec![FaultEvent {
            time: 5.0,
            kind: FaultKind::NodeCrash(NodeId(0)),
        }]);
        let tl = FaultTimeline::build(&s, 1);
        assert!(tl.is_down(NodeId(0), 1e12));
        assert_eq!(tl.next_up(NodeId(0), 10.0), f64::INFINITY);
    }
}

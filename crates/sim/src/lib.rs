//! # socl-sim — simulation platform and testbed emulator
//!
//! Six pieces:
//!
//! * [`mobility`] — the user mobility model: between time slots users hop
//!   between base stations (random-waypoint over the topology), reproducing
//!   the paper's "users randomly moved among edge nodes" trace setup.
//! * [`online`] — the time-slotted online simulator: per slot the user
//!   distribution shifts, some users re-draw their service chains
//!   ("stochastic service dependencies"), the configured policy (SoCL or a
//!   baseline) re-provisions one-shot, and the slot is scored. Supports
//!   node-failure injection between slots, mid-slot instance kills, and
//!   failure-triggered warm repair (`socl-core::online::repair_placement`).
//! * [`faults`] — deterministic, seedable fault schedules (node crash and
//!   recovery, link degradation, instance cold-kills, in-flight request
//!   loss) with random and criticality-targeted generators driven by the
//!   `socl-net::resilience` rankings.
//! * [`recovery`] — crash-consistent checkpoint/restore for the online
//!   simulator: a versioned, serde-free binary [`recovery::Checkpoint`] of
//!   every live piece of state, a checksummed write-ahead
//!   [`recovery::DecisionLog`], torn-tail detection, a seeded kill-and-
//!   recover driver ([`recovery::run_crash_recovery`]) that must converge
//!   bit-identically with the uninterrupted run, and an invariant auditor
//!   ([`recovery::audit_invariants`]).
//! * [`chaos`] — a coverage-guided chaos soak ([`chaos::run_chaos_soak`])
//!   sweeping seeds × kill-points × fault schedules × torn-tail modes and
//!   auditing every recovery; drives `socl chaos` and the
//!   `BENCH_recovery.json` gate.
//! * [`testbed`] — a discrete-event emulator standing in for the paper's
//!   17-machine Kubernetes cluster (Section V.C): per-node FIFO CPU queues,
//!   bandwidth-delayed transfers along the routed paths, serverless
//!   cold-start penalties for instances that have gone cold, and per-request
//!   end-to-end latency recording. Queueing contention is what makes RP's
//!   unbalanced placements spike in Figure 10; the emulator reproduces that
//!   mechanism. A [`faults::FaultSchedule`] can be replayed mid-run, with a
//!   configurable [`testbed::RetryPolicy`] (timeouts, bounded backoff
//!   retries, hedged duplicates) and graceful cloud degradation.

pub mod chaos;
pub mod faults;
pub mod mobility;
pub mod online;
pub mod policy;
pub mod recovery;
pub mod testbed;

pub use chaos::{run_chaos_soak, SoakCase, SoakError, SoakPlan, SoakRow, SoakSummary};
pub use faults::{
    FaultEvent, FaultKind, FaultPlan, FaultSchedule, FaultStats, FaultTimeline, Targeting,
};
pub use mobility::MobilityModel;
pub use online::{ControlPlaneDisabled, OnlineConfig, OnlineSimulator, SlotRecord};
pub use policy::Policy;
pub use recovery::{
    audit_invariants, frame_append, frame_payloads, get_scaler_state, put_scaler_state,
    run_crash_recovery, scan_frames, AuditReport, Checkpoint, DecisionLog, LogRecord,
    RecoveryConfig, RecoveryError, RecoveryOutcome, RestoreError, RngState, SlotMetrics,
    TailReport, TornTail, TornTailReason,
};
pub use testbed::{run_testbed, RetryPolicy, TestbedConfig, TestbedResult};

#[cfg(test)]
mod proptests;

//! Coverage-guided chaos soak over the crash-recovery machinery.
//!
//! One [`run_crash_recovery`] exercise proves recovery at *one*
//! `(seed, kill-point, fault schedule, torn tail)` combination. The soak
//! sweeps a matrix of them and then goes where the matrix didn't: every
//! run reports which behaviors it actually exercised (mid-slot crashes,
//! repairs, admission sheds, scheduled faults, torn-tail kinds, replay
//! depths…), and runs that light up *new* coverage seed a guided round
//! of deterministic neighbors (adjacent kill-points, derived seeds) —
//! the cheap half of a coverage-guided fuzzer, with the determinism the
//! rest of the codebase demands: same plan, same runs, same summary.
//!
//! Every run's recovered timeline must match its golden run bit for bit
//! and pass the [`audit_invariants`] auditor; the summary counts any
//! violation so a CI gate can fail on `violations > 0`.

use crate::faults::{FaultPlan, FaultSchedule};
use crate::online::OnlineConfig;
use crate::policy::Policy;
use crate::recovery::{run_crash_recovery, RecoveryConfig, RecoveryError, TornTail};
use std::collections::BTreeSet;
use std::time::Duration;

/// The soak's sweep matrix plus guidance budget.
#[derive(Debug, Clone)]
pub struct SoakPlan {
    /// Base run configuration; each soak run overrides `seed` and
    /// `faults`.
    pub base: OnlineConfig,
    /// Placement policy under test.
    pub policy: Policy,
    /// Seeds to sweep.
    pub seeds: Vec<u64>,
    /// Kill-points (slot boundaries) to sweep.
    pub kill_slots: Vec<usize>,
    /// Checkpoint cadence for every run.
    pub checkpoint_every: usize,
    /// Also sweep a generated moderate fault schedule per seed (in
    /// addition to the empty schedule).
    pub with_fault_schedules: bool,
    /// Torn-tail modes to sweep.
    pub torn_tails: Vec<TornTail>,
    /// Extra guided runs budget: neighbors of coverage-discovering runs.
    pub guided_rounds: usize,
}

impl SoakPlan {
    /// A small deterministic plan suitable for CI: 2 seeds × 3
    /// kill-points × {empty, moderate} schedules × all torn-tail modes,
    /// plus a few guided rounds.
    #[must_use]
    pub fn ci(base: OnlineConfig, policy: Policy) -> Self {
        let slots = base.slots;
        Self {
            base,
            policy,
            seeds: vec![1, 2],
            kill_slots: vec![0, slots / 2, slots.saturating_sub(1)],
            checkpoint_every: 3,
            with_fault_schedules: true,
            torn_tails: vec![TornTail::Clean, TornTail::Garbage, TornTail::PartialRecord],
            guided_rounds: 4,
        }
    }
}

/// Identity of one soak run within the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SoakCase {
    /// Run seed.
    pub seed: u64,
    /// Kill-point (slot boundary).
    pub kill_slot: usize,
    /// Whether a generated fault schedule was active.
    pub faulted: bool,
    /// Torn-tail mode (ordinal, for ordering).
    pub torn: u8,
}

fn torn_of(ord: u8) -> TornTail {
    match ord {
        1 => TornTail::Garbage,
        2 => TornTail::PartialRecord,
        _ => TornTail::Clean,
    }
}

fn torn_ord(t: TornTail) -> u8 {
    match t {
        TornTail::Clean => 0,
        TornTail::Garbage => 1,
        TornTail::PartialRecord => 2,
    }
}

/// One soak run's outcome, flattened for reporting.
#[derive(Debug, Clone)]
pub struct SoakRow {
    /// Which case ran.
    pub case: SoakCase,
    /// Whether this run came from the guided rounds.
    pub guided: bool,
    /// Slot the recovery restored from.
    pub restored_from_slot: usize,
    /// Slots re-executed up to the kill-point.
    pub replayed_slots: usize,
    /// Stitched-vs-golden bit mismatches (must be 0).
    pub metric_mismatches: usize,
    /// Replay-vs-log bit mismatches (must be 0).
    pub replay_log_mismatches: usize,
    /// Invariant violations found by the auditor (must be empty).
    pub violations: Vec<String>,
    /// Serialized checkpoint size.
    pub checkpoint_bytes: usize,
    /// Log size at the kill.
    pub log_bytes: usize,
    /// Wall-clock of checkpoint serialization during the victim run.
    pub checkpoint_wall: Duration,
    /// Wall-clock of the recovery (scan + decode + restore + replay).
    pub recovery_wall: Duration,
    /// Coverage features this run exercised.
    pub features: Vec<&'static str>,
}

/// Aggregated soak results.
#[derive(Debug, Clone)]
pub struct SoakSummary {
    /// Every run, in execution order (matrix first, then guided).
    pub rows: Vec<SoakRow>,
    /// Total invariant violations across all runs.
    pub violations: usize,
    /// Runs whose recovered timeline differed from golden.
    pub mismatch_runs: usize,
    /// Distinct coverage features exercised, sorted.
    pub coverage: Vec<&'static str>,
    /// Largest checkpoint seen.
    pub max_checkpoint_bytes: usize,
    /// Mean checkpoint size across runs.
    pub mean_checkpoint_bytes: f64,
    /// Mean log size at the kill.
    pub mean_log_bytes: f64,
}

impl SoakSummary {
    /// True when every run matched golden and passed the audit.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations == 0 && self.mismatch_runs == 0
    }
}

/// Why the soak aborted (any single run failing to *complete* — match
/// failures are reported in the summary, not here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoakError {
    /// The case that failed.
    pub case: SoakCase,
    /// The underlying recovery failure.
    pub error: RecoveryError,
}

impl std::fmt::Display for SoakError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "soak case seed={} kill={} faulted={} torn={}: {}",
            self.case.seed, self.case.kill_slot, self.case.faulted, self.case.torn, self.error
        )
    }
}

impl std::error::Error for SoakError {}

fn schedule_for(base: &OnlineConfig, policy: &Policy, seed: u64) -> FaultSchedule {
    // Build the substrate once per seed to target the generated plan at
    // the actual topology and a representative placement.
    let cfg = OnlineConfig {
        seed,
        faults: FaultSchedule::empty(),
        ..base.clone()
    };
    let sim = crate::online::OnlineSimulator::new(cfg);
    let sc = sim.base();
    let placement = policy.place(sc, 0);
    let horizon = base.slots as f64 * base.slot_secs;
    FaultPlan::moderate(horizon).generate(&sc.net, &placement, base.users, seed)
}

fn features_of(row_case: &SoakCase, out: &crate::recovery::RecoveryOutcome) -> Vec<&'static str> {
    let mut f = Vec::new();
    if out.stitched.iter().any(|m| m.mid_slot_failures > 0) {
        f.push("mid-slot-crash");
    }
    if out.stitched.iter().any(|m| m.repair_churn > 0) {
        f.push("repair-churn");
    }
    if out.stitched.iter().any(|m| m.shed_requests > 0) {
        f.push("admission-shed");
    }
    if out.stitched.iter().any(|m| m.failed_nodes > 0) {
        f.push("node-outage");
    }
    if out.stitched.iter().any(|m| m.scale_ups > 0) {
        f.push("scale-up");
    }
    if out.stitched.iter().any(|m| m.scale_downs > 0) {
        f.push("scale-down");
    }
    if row_case.faulted {
        f.push("scheduled-faults");
    }
    match torn_of(row_case.torn) {
        TornTail::Clean => {}
        TornTail::Garbage => f.push("torn-garbage"),
        TornTail::PartialRecord => f.push("torn-partial-record"),
    }
    if out.truncated_tail_bytes > 0 {
        f.push("tail-truncated");
    }
    if out.replayed_slots == 0 {
        f.push("replay-empty");
    } else if out.replayed_slots >= 3 {
        f.push("replay-deep");
    }
    if out.restored_from_slot == row_case.kill_slot {
        f.push("kill-on-checkpoint");
    }
    f
}

fn run_case(
    plan: &SoakPlan,
    case: SoakCase,
    guided: bool,
) -> Result<(SoakRow, BTreeSet<&'static str>), SoakError> {
    let faults = if case.faulted {
        schedule_for(&plan.base, &plan.policy, case.seed)
    } else {
        FaultSchedule::empty()
    };
    let cfg = OnlineConfig {
        seed: case.seed,
        faults,
        ..plan.base.clone()
    };
    let rcfg = RecoveryConfig {
        checkpoint_every: plan.checkpoint_every.max(1),
        kill_at_slot: case.kill_slot,
        torn_tail: torn_of(case.torn),
    };
    let out =
        run_crash_recovery(&cfg, &plan.policy, &rcfg).map_err(|error| SoakError { case, error })?;
    let features = features_of(&case, &out);
    let feature_set: BTreeSet<&'static str> = features.iter().copied().collect();
    Ok((
        SoakRow {
            case,
            guided,
            restored_from_slot: out.restored_from_slot,
            replayed_slots: out.replayed_slots,
            metric_mismatches: out.metric_mismatches,
            replay_log_mismatches: out.replay_log_mismatches,
            violations: out.audit.violations,
            checkpoint_bytes: out.checkpoint_bytes,
            log_bytes: out.log_bytes,
            checkpoint_wall: out.checkpoint_wall,
            recovery_wall: out.recovery_wall,
            features,
        },
        feature_set,
    ))
}

/// Execute the full soak: the base matrix, then coverage-guided
/// neighbors of every run that exercised a feature no earlier run had.
///
/// Fully deterministic: the same plan produces the same runs in the
/// same order with the same summary (wall-clock fields excepted).
///
/// # Errors
/// [`SoakError`] when a run fails to *complete* (checkpoint decode or
/// restore failure) — a recovered-but-wrong run is not an error; it is
/// reported through the summary's violation and mismatch counters.
pub fn run_chaos_soak(plan: &SoakPlan) -> Result<SoakSummary, SoakError> {
    let mut rows = Vec::new();
    let mut seen_cases: BTreeSet<SoakCase> = BTreeSet::new();
    let mut coverage: BTreeSet<&'static str> = BTreeSet::new();
    let mut frontier: Vec<SoakCase> = Vec::new();

    // -- the base matrix --------------------------------------------------
    for &seed in &plan.seeds {
        for &kill_slot in &plan.kill_slots {
            for faulted in [false, plan.with_fault_schedules] {
                for &tt in &plan.torn_tails {
                    let case = SoakCase {
                        seed,
                        kill_slot,
                        faulted,
                        torn: torn_ord(tt),
                    };
                    if !seen_cases.insert(case) {
                        continue;
                    }
                    let (row, features) = run_case(plan, case, false)?;
                    let novel = features.iter().any(|f| !coverage.contains(f));
                    coverage.extend(features);
                    if novel {
                        frontier.push(case);
                    }
                    rows.push(row);
                }
            }
        }
    }

    // -- guided rounds: walk the neighbors of coverage-discovering runs --
    let mut budget = plan.guided_rounds;
    let mut cursor = 0usize;
    while budget > 0 {
        let Some(&case) = frontier.get(cursor) else {
            break;
        };
        cursor += 1;
        let neighbors = [
            SoakCase {
                kill_slot: case.kill_slot.saturating_sub(1),
                ..case
            },
            SoakCase {
                kill_slot: (case.kill_slot + 1).min(plan.base.slots),
                ..case
            },
            SoakCase {
                seed: case.seed.wrapping_add(1009),
                ..case
            },
        ];
        for n in neighbors {
            if budget == 0 {
                break;
            }
            if !seen_cases.insert(n) {
                continue;
            }
            budget -= 1;
            let (row, features) = run_case(plan, n, true)?;
            let novel = features.iter().any(|f| !coverage.contains(f));
            coverage.extend(features);
            if novel {
                frontier.push(n);
            }
            rows.push(row);
        }
    }

    // -- aggregate --------------------------------------------------------
    let violations = rows.iter().map(|r| r.violations.len()).sum();
    let mismatch_runs = rows
        .iter()
        .filter(|r| r.metric_mismatches > 0 || r.replay_log_mismatches > 0)
        .count();
    let max_checkpoint_bytes = rows.iter().map(|r| r.checkpoint_bytes).max().unwrap_or(0);
    let n = rows.len().max(1) as f64;
    let mean_checkpoint_bytes = rows.iter().map(|r| r.checkpoint_bytes as f64).sum::<f64>() / n;
    let mean_log_bytes = rows.iter().map(|r| r.log_bytes as f64).sum::<f64>() / n;
    Ok(SoakSummary {
        rows,
        violations,
        mismatch_runs,
        coverage: coverage.into_iter().collect(),
        max_checkpoint_bytes,
        mean_checkpoint_bytes,
        mean_log_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_core::SoclConfig;

    fn quick_plan() -> SoakPlan {
        SoakPlan {
            base: OnlineConfig {
                slots: 5,
                users: 14,
                nodes: 6,
                fail_prob: 0.3,
                recover_prob: 0.4,
                ..OnlineConfig::default()
            },
            policy: Policy::Socl(SoclConfig::default()),
            seeds: vec![1],
            kill_slots: vec![0, 3],
            checkpoint_every: 2,
            with_fault_schedules: true,
            torn_tails: vec![TornTail::Clean, TornTail::Garbage],
            guided_rounds: 2,
        }
    }

    #[test]
    fn soak_is_clean_and_deterministic() {
        let plan = quick_plan();
        let a = run_chaos_soak(&plan).expect("soak must complete");
        assert!(a.is_clean(), "violations: {:?}", a.rows);
        assert!(!a.rows.is_empty());
        assert!(!a.coverage.is_empty());
        let b = run_chaos_soak(&plan).expect("soak must complete");
        assert_eq!(a.rows.len(), b.rows.len());
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.case, rb.case);
            assert_eq!(ra.features, rb.features);
            assert_eq!(ra.checkpoint_bytes, rb.checkpoint_bytes);
        }
        assert_eq!(a.coverage, b.coverage);
    }

    #[test]
    fn soak_exercises_torn_tails_and_schedules() {
        let summary = run_chaos_soak(&quick_plan()).expect("soak must complete");
        assert!(
            summary.coverage.contains(&"torn-garbage"),
            "coverage: {:?}",
            summary.coverage
        );
        assert!(
            summary.coverage.contains(&"scheduled-faults"),
            "coverage: {:?}",
            summary.coverage
        );
        // Guided rounds actually ran.
        assert!(
            summary.rows.iter().any(|r| r.guided),
            "no guided run executed"
        );
        // The kill-at-0 case restores from the mandatory slot-0 checkpoint.
        assert!(summary
            .rows
            .iter()
            .any(|r| r.case.kill_slot == 0 && r.restored_from_slot == 0));
    }
}

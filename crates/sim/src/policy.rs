//! Provisioning policies the simulator can drive.

use socl_baselines::{jdr, random_provisioning};
use socl_core::{SoclConfig, SoclSolver};
use socl_model::{Placement, Scenario};

/// A provisioning policy: given the current slot's scenario, produce a
/// placement. Wraps SoCL and the baselines behind one dispatch point so the
/// online simulator and the testbed harnesses treat them uniformly.
#[derive(Debug, Clone)]
pub enum Policy {
    /// The SoCL pipeline with the given configuration.
    Socl(SoclConfig),
    /// Random provisioning; the per-slot seed is mixed into `seed`.
    Rp { seed: u64 },
    /// Joint deployment and routing.
    Jdr,
}

impl Policy {
    /// Short display tag.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Socl(_) => "SoCL",
            Policy::Rp { .. } => "RP",
            Policy::Jdr => "JDR",
        }
    }

    /// Compute the slot's placement.
    pub fn place(&self, sc: &Scenario, slot: u64) -> Placement {
        match self {
            Policy::Socl(cfg) => SoclSolver::with_config(cfg.clone()).solve(sc).placement,
            Policy::Rp { seed } => {
                random_provisioning(sc, seed.wrapping_mul(0x517c_c1b7_2722_0a95) ^ slot).placement
            }
            Policy::Jdr => jdr(sc).placement,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_model::ScenarioConfig;

    #[test]
    fn all_policies_produce_covering_placements() {
        let sc = ScenarioConfig::paper(8, 30).build(1);
        for policy in [
            Policy::Socl(SoclConfig::default()),
            Policy::Rp { seed: 1 },
            Policy::Jdr,
        ] {
            let p = policy.place(&sc, 0);
            assert!(p.covers(&sc.requests), "{} does not cover", policy.name());
        }
    }

    #[test]
    fn rp_varies_by_slot_socl_does_not() {
        let sc = ScenarioConfig::paper(8, 30).build(2);
        let socl = Policy::Socl(SoclConfig::default());
        assert_eq!(socl.place(&sc, 0), socl.place(&sc, 1));
        let rp = Policy::Rp { seed: 3 };
        // Different slots reseed RP; placements almost surely differ.
        assert_ne!(rp.place(&sc, 0), rp.place(&sc, 1));
    }
}

//! Discrete-event testbed emulator (the Kubernetes-cluster stand-in).
//!
//! The paper's Section V.C runs RP/JDR/SoCL placements on a 17-machine
//! cluster and records per-request latency. This emulator reproduces the
//! measurement pipeline:
//!
//! * requests arrive with uniform jitter inside each epoch (the paper's
//!   "users issued requests every 5 minutes on average"),
//! * every chain stage queues FIFO on its host's CPU (service time
//!   `q(m)/c(v)`, non-preemptive) — contention is real: two requests on one
//!   node wait on each other, which is how unbalanced placements (RP) grow
//!   latency spikes,
//! * transfers between stages are delayed by the routed path's bandwidth,
//! * serverless cold starts: an instance idle for longer than `keep_warm`
//!   pays `cold_start` before serving (warm instances nearby — SoCL's
//!   storage-planning goal — avoid this).
//!
//! Routing follows the exact per-request DP for the placement under test;
//! with the default (fault-free) configuration the emulator behaves exactly
//! as the original pipeline.
//!
//! # Fault injection, retries, hedging
//!
//! A [`FaultSchedule`] can be replayed mid-run: node crashes wipe the
//! victim's queue and fail its in-flight work (the radio keeps forwarding —
//! only the compute is lost), link degradations stretch transfer times (the
//! all-pairs paths are re-derived at every link-state change), instance
//! cold-kills force the next request to pay the cold start again, and
//! request losses drop an in-flight transfer.
//!
//! The dispatcher reacts through a [`RetryPolicy`]: per-stage attempt
//! timeouts, bounded retries with exponential backoff and deterministic
//! jitter, and hedged dispatch — when the chosen replica's predicted
//! completion exceeds `hedge_after`, the dispatcher dry-runs a duplicate on
//! the next-best replica and commits whichever copy is predicted to win
//! (an analytic stand-in for racing both copies that avoids double queue
//! occupancy; the duplicate's dispatch is delayed by the hedge threshold,
//! as a real hedger only fires after waiting that long). Attempt 0 follows
//! the DP-optimal route blindly — liveness is only discovered when the data
//! arrives, as on a real cluster — so *retries are the failover mechanism*:
//! they re-dispatch to the best alive replica by predicted completion.
//! A scheduled request loss claims the victim user's next transfer at or
//! after the loss instant (each loss fails exactly one attempt).
//!
//! When every replica of a service is dead, or retries are exhausted, the
//! request degrades to the cloud (counted, never silently lost) unless
//! `degrade_to_cloud` is off, in which case it is dropped. Every issued
//! request ends in exactly one outcome and the conservation identity
//! `completed + degraded + dropped + fallbacks + shed == issued` is
//! enforced by property tests.
//!
//! # Serverless control plane
//!
//! With [`TestbedConfig::autoscale`] set, the one-instance-per-cell data
//! plane is replaced by **replica pools**: each deployed `(service, node)`
//! cell holds a pool of isolated containers, each serving at the node's
//! rate `c(v)`, sized mid-run by the [`Autoscaler`] from observed
//! concurrency. Scaled-up replicas boot cold (their first request pays
//! `cold_start`); scale-downs reclaim only idle replicas; a request
//! landing on a scaled-to-zero cell boots one on demand rather than being
//! stranded. Requests then enter through arrival events so admission
//! control (priority-classed shedding, counted in `shed_requests`) sees
//! live in-flight state. The whole control loop is seeded-deterministic: same
//! seed and config, same scaling timeline, at any `--threads`.

use crate::faults::{FaultSchedule, FaultTimeline};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socl_autoscale::{AutoscaleConfig, Autoscaler};
use socl_model::{optimal_route, Placement, RouteOutcome, Scenario};
use socl_net::{AllPairs, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Dispatcher policy for failed or slow stage attempts.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Per-attempt timeout in seconds, measured from dispatch to stage
    /// completion (transfer + queue + service). `f64::INFINITY` disables.
    pub timeout: f64,
    /// Retries allowed per stage after the first attempt (0 disables).
    pub max_retries: usize,
    /// Base backoff delay in seconds before the first retry.
    pub backoff_base: f64,
    /// Multiplicative backoff growth per attempt.
    pub backoff_factor: f64,
    /// Uniform jitter fraction applied to each backoff (0 = none). Drawn
    /// from the run's seeded RNG, so runs stay deterministic.
    pub jitter: f64,
    /// Hedged dispatch: when the chosen replica's predicted completion lies
    /// more than this many seconds after dispatch, dry-run a duplicate on
    /// the next-best replica and commit the predicted winner. `None`
    /// disables.
    pub hedge_after: Option<f64>,
}

impl Default for RetryPolicy {
    /// Everything disabled — the fault-free testbed behaves exactly as the
    /// original (pre-fault) emulator.
    fn default() -> Self {
        Self {
            timeout: f64::INFINITY,
            max_retries: 0,
            backoff_base: 0.05,
            backoff_factor: 2.0,
            jitter: 0.2,
            hedge_after: None,
        }
    }
}

impl RetryPolicy {
    /// A production-ish policy: 3 retries, 30 s attempt timeout, hedging
    /// after 2 s.
    pub fn resilient() -> Self {
        Self {
            timeout: 30.0,
            max_retries: 3,
            hedge_after: Some(2.0),
            ..Self::default()
        }
    }

    /// True when neither timeouts, retries, nor hedging are active.
    pub fn is_disabled(&self) -> bool {
        self.timeout.is_infinite() && self.max_retries == 0 && self.hedge_after.is_none()
    }
}

/// Emulator parameters.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Number of epochs to run.
    pub epochs: usize,
    /// Epoch length in seconds (paper: 5 minutes).
    pub epoch_secs: f64,
    /// Cold-start penalty in seconds for an instance gone cold.
    pub cold_start: f64,
    /// Idle time after which an instance goes cold.
    pub keep_warm: f64,
    /// Arrival jitter seed.
    pub seed: u64,
    /// Mid-run fault schedule (empty = the original fault-free emulator).
    pub faults: FaultSchedule,
    /// Dispatcher retry/timeout/hedging policy.
    pub retry: RetryPolicy,
    /// Graceful degradation: when a request's next stage has no alive
    /// replica (or retries are exhausted), serve it from the cloud at the
    /// scenario's `cloud_penalty` instead of dropping it.
    pub degrade_to_cloud: bool,
    /// Serverless control plane. `None` keeps the legacy data plane: one
    /// implicit instance per deployed `(service, node)` cell, all services
    /// on a node serialized on its CPU. `Some` replaces each deployed cell
    /// with a **replica pool** sized by the [`Autoscaler`]: each replica is
    /// an isolated container serving at the node's rate `c(v)`, scaled-up
    /// replicas boot cold, scale-downs reclaim only idle replicas, and a
    /// request landing on a scaled-to-zero cell boots one on demand (it is
    /// never stranded — it pays the cold start instead).
    pub autoscale: Option<AutoscaleConfig>,
    /// Requests issued per epoch (diurnal load shaping). `None` keeps the
    /// legacy workload — every user issues exactly one request per epoch.
    /// `Some(v)` issues `v[e]` requests in epoch `e` (the last entry
    /// repeats if the run is longer), each from a seeded-uniformly chosen
    /// user, which is how the autoscale bench replays a diurnal trace with
    /// a flash crowd.
    pub epoch_arrivals: Option<Vec<usize>>,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        Self {
            epochs: 1,
            epoch_secs: 300.0,
            cold_start: 0.5,
            keep_warm: 600.0,
            seed: 0,
            faults: FaultSchedule::empty(),
            retry: RetryPolicy::default(),
            degrade_to_cloud: true,
            autoscale: None,
            epoch_arrivals: None,
        }
    }
}

/// Measured latencies and per-request outcome accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TestbedResult {
    /// End-to-end latency per (epoch, request), seconds; `None` for cloud
    /// fallbacks and for requests degraded or dropped mid-flight.
    pub per_request: Vec<Option<f64>>,
    /// Mean latency per epoch (fallbacks/degraded/dropped excluded).
    pub per_epoch_mean: Vec<f64>,
    /// Global mean and max over edge-served requests.
    pub mean: f64,
    pub max: f64,
    /// Cold starts incurred.
    pub cold_starts: usize,
    /// Requests that had no edge route at issue time (placement gap).
    pub fallbacks: usize,
    /// Requests issued in total (epochs × users).
    pub issued: usize,
    /// Requests served end-to-end on the edge.
    pub completed: usize,
    /// Stage retry attempts dispatched.
    pub retried: usize,
    /// Hedged duplicates that were committed over the primary.
    pub hedged: usize,
    /// Attempts abandoned on timeout.
    pub timeouts: usize,
    /// Requests that fell back to the cloud mid-flight (dead replicas or
    /// exhausted retries, with `degrade_to_cloud` on).
    pub degraded: usize,
    /// Requests lost outright (`degrade_to_cloud` off).
    pub dropped: usize,
    /// Fraction of issued requests served end-to-end on the edge.
    pub availability: f64,
    /// Mean node outage duration within the run horizon, seconds.
    pub mttr: f64,
    /// Service-level scale-up decisions taken by the autoscaler (0 when
    /// the control plane is off).
    pub scale_up_events: usize,
    /// Service-level scale-down decisions taken by the autoscaler.
    pub scale_down_events: usize,
    /// Requests refused by admission control at issue time.
    pub shed_requests: usize,
    /// Billed warm-pool integral Σ replicas × seconds over the run horizon
    /// — the Eq. 1 deployment-cost proxy the keep-alive economics trade
    /// against cold starts. 0 when the control plane is off.
    pub replica_seconds: f64,
}

impl TestbedResult {
    /// `p`-quantile of served-request latencies (seconds); 0 when nothing
    /// was served.
    pub fn latency_percentile(&self, p: f64) -> f64 {
        let served: Vec<f64> = self.per_request.iter().flatten().copied().collect();
        socl_model::stats::percentile(&served, p)
    }

    /// Median served latency, seconds.
    pub fn median(&self) -> f64 {
        self.latency_percentile(0.5)
    }

    /// Mean completion time with degraded, dropped, **and shed** requests
    /// charged `cloud_penalty` seconds each — the delay a user actually
    /// experiences under faults and overload (0 when nothing beyond
    /// fallbacks was issued). Shed requests are charged exactly like
    /// degraded ones: admission control turns them away at the edge, so
    /// the user retries against the cloud and pays its penalty — shedding
    /// is never free in the reported means.
    pub fn effective_mean(&self, cloud_penalty: f64) -> f64 {
        let served: f64 = self.per_request.iter().flatten().sum();
        let cloud_bound = self.degraded + self.dropped + self.shed_requests;
        let charged = self.completed + cloud_bound;
        if charged == 0 {
            return 0.0;
        }
        (served + cloud_bound as f64 * cloud_penalty) / charged as f64
    }
}

#[derive(Debug, Clone, Copy)]
struct Event {
    /// Arrival of the stage's input data at `node` (or, for arrival
    /// events, the instant the request is issued at the user's station).
    time: f64,
    /// Request index within the flattened (epoch × request) list.
    job: usize,
    /// Chain stage about to be *served*.
    stage: usize,
    /// Attempt number for this stage (0 = first).
    attempt: usize,
    /// Serving node for this attempt.
    node: u32,
    /// Node (or user location) the data was sent from.
    from: u32,
    /// Time the attempt was dispatched (timeout baseline).
    dispatch: f64,
    /// Request issue event (control plane only): runs admission and seeds
    /// the first dispatch, so the shedder sees live in-flight counts.
    is_arrival: bool,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time
            && self.job == other.job
            && self.stage == other.stage
            && self.attempt == other.attempt
            && self.node == other.node
            && self.is_arrival == other.is_arrival
    }
}
impl Eq for Event {}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by time, deterministic tie-breaks; at equal keys an
        // arrival (issue) event runs before serve events.
        other
            .time
            .total_cmp(&self.time)
            .then(other.job.cmp(&self.job))
            .then(other.stage.cmp(&self.stage))
            .then(other.attempt.cmp(&self.attempt))
            .then(other.node.cmp(&self.node))
            .then(self.is_arrival.cmp(&other.is_arrival))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Terminal outcome of one issued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Fallback,
    Completed,
    Degraded,
    Dropped,
    /// Refused by admission control at issue time (control plane only).
    Shed,
}

/// Why a serve attempt failed.
#[derive(Debug, Clone, Copy)]
enum FailReason {
    /// In-flight transfer lost (consumes the indexed RequestLoss fault).
    Loss(usize),
    /// Serving node down on arrival, or crashed while queued/serving;
    /// carries the recovery time (∞ if it never comes back).
    NodeDown { recover_at: f64 },
    /// Attempt exceeded the per-stage timeout.
    Timeout,
}

/// Result of assessing one serve attempt (pure — nothing committed).
struct Assessment {
    done: f64,
    cold: bool,
    /// `Some((detect_time, reason))` when the attempt fails.
    fail: Option<(f64, FailReason)>,
    /// Pool mode: index of the chosen replica in its cell's pool;
    /// `usize::MAX` when the cell is scaled to zero and a replica must be
    /// booted on demand. Unused (0) on the legacy data plane.
    replica: usize,
}

struct Job {
    user: usize,
    arrival: f64,
    start: f64,
    epoch: usize,
}

/// One warm container in a `(service, node)` replica pool.
#[derive(Debug, Clone, Copy)]
struct Replica {
    /// When its current request (if any) finishes.
    free_at: f64,
    /// When it last finished serving (`-inf` for a never-used cold boot).
    last_done: f64,
}

/// Serverless data-plane state, present when the control plane is on.
struct PoolState {
    scaler: Autoscaler,
    /// Replica pools indexed by `service.idx() * nodes + node.idx()`.
    pools: Vec<Vec<Replica>>,
    /// Pending serve attempts per service (dispatched, data not yet
    /// arrived at the serving node).
    inflight: Vec<usize>,
    /// Scheduled completion times of committed stage executions, per
    /// service; entries in the future are work currently queued on or
    /// being served by a replica. Together with `inflight` this is the
    /// concurrency signal the scaler targets and the shedder measures
    /// overload against (pruned lazily at tick time).
    completions: Vec<Vec<f64>>,
    /// Next scaler tick time.
    next_tick: f64,
    /// Billed warm-pool integral Σ replicas × seconds, up to `last_change`.
    replica_seconds: f64,
    last_change: f64,
}

impl PoolState {
    /// Fold the pool-size integral forward to `t` (call *before* any
    /// replica-count change).
    fn account(&mut self, t: f64) {
        let total = self.scaler.counts().total();
        self.replica_seconds += total as f64 * (t - self.last_change).max(0.0);
        self.last_change = self.last_change.max(t);
    }

    /// Observed concurrency of service `i` at time `t`: attempts in
    /// transfer plus executions that finish after `t`.
    fn observed_load(&self, i: usize, t: f64) -> f64 {
        (self.inflight[i] + self.completions[i].iter().filter(|&&d| d > t).count()) as f64
    }
}

struct Engine<'a> {
    sc: &'a Scenario,
    placement: &'a Placement,
    cfg: &'a TestbedConfig,
    timeline: FaultTimeline,
    /// Link-state snapshots: `(valid_from, all_pairs)` sorted by time.
    aps: Vec<(f64, AllPairs)>,
    routes: Vec<Option<Vec<NodeId>>>,
    jobs: Vec<Job>,
    heap: BinaryHeap<Event>,
    rng: StdRng,
    node_free: Vec<f64>,
    last_used: Vec<f64>,
    loss_used: Vec<bool>,
    outcome: Vec<Option<Outcome>>,
    frontier: Vec<usize>,
    per_request: Vec<Option<f64>>,
    cold_starts: usize,
    retried: usize,
    hedged: usize,
    timeouts: usize,
    /// Serverless control plane; `None` = legacy one-instance data plane.
    pool: Option<PoolState>,
}

impl<'a> Engine<'a> {
    /// The all-pairs snapshot in force at time `t`.
    fn ap_at(&self, t: f64) -> &AllPairs {
        let mut best = &self.aps[0].1;
        for (from, ap) in &self.aps {
            if *from <= t {
                best = ap;
            } else {
                break;
            }
        }
        best
    }

    fn service_of(&self, job: usize, stage: usize) -> socl_model::ServiceId {
        self.sc.requests[self.jobs[job].user].chain[stage]
    }

    /// Payload size entering `stage` of `job`'s chain.
    fn stage_data(&self, job: usize, stage: usize) -> f64 {
        let req = &self.sc.requests[self.jobs[job].user];
        if stage == 0 {
            req.r_in
        } else {
            req.edge_data[stage - 1]
        }
    }

    /// Nominal service time (no cold start) of `stage` on `node`.
    fn exec_time(&self, job: usize, stage: usize, node: NodeId) -> f64 {
        self.sc.catalog.compute_gflop(self.service_of(job, stage))
            / self.sc.net.compute_gflops(node)
    }

    /// First unconsumed RequestLoss for `user` scheduled at or before
    /// `t1`: a loss claims the user's next transfer after its instant.
    fn find_loss(&self, user: usize, t1: f64) -> Option<usize> {
        self.timeline
            .losses()
            .iter()
            .enumerate()
            .find(|&(i, &(t, u))| !self.loss_used[i] && u == user && t <= t1)
            .map(|(i, _)| i)
    }

    /// Pure assessment of serving `stage` of `job` on `node`, with data
    /// dispatched at `dispatch` and arriving at `arrival`.
    fn assess(
        &self,
        job: usize,
        stage: usize,
        node: NodeId,
        dispatch: f64,
        arrival: f64,
    ) -> Assessment {
        let user = self.jobs[job].user;
        if let Some(idx) = self.find_loss(user, arrival) {
            // The packet vanishes in flight; the failure is only detected
            // at the expected arrival time.
            return Assessment {
                done: arrival,
                cold: false,
                fail: Some((arrival, FailReason::Loss(idx))),
                replica: 0,
            };
        }
        let svc = self.service_of(job, stage);
        let wi = svc.idx() * self.sc.nodes() + node.idx();
        // Pool mode: serve on the replica that frees up first (index
        // tie-break); a scaled-to-zero cell boots a replica on demand.
        // Legacy mode: the node's single CPU serializes everything.
        let (replica, queue_free, last) = match &self.pool {
            Some(ps) => match ps.pools[wi]
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.free_at.total_cmp(&b.1.free_at).then(a.0.cmp(&b.0)))
            {
                Some((ix, r)) => (ix, r.free_at, r.last_done),
                None => (usize::MAX, arrival, f64::NEG_INFINITY),
            },
            None => (0, self.node_free[node.idx()], self.last_used[wi]),
        };
        let cold = arrival - last > self.cfg.keep_warm
            || self.timeline.killed_between(svc, node, last, arrival)
            || self
                .timeline
                .down_overlap(node, last.max(0.0), arrival)
                .is_some();
        if self.timeline.is_down(node, arrival) {
            return Assessment {
                done: arrival,
                cold,
                fail: Some((
                    arrival,
                    FailReason::NodeDown {
                        recover_at: self.timeline.next_up(node, arrival),
                    },
                )),
                replica,
            };
        }
        let mut service_time = self.exec_time(job, stage, node);
        if cold {
            service_time += self.cfg.cold_start;
        }
        let start = arrival.max(queue_free);
        let done = start + service_time;
        let crash = self
            .timeline
            .down_overlap(node, arrival, done)
            .map(|(a, b)| (arrival.max(a), b));
        let timeout_at = dispatch + self.cfg.retry.timeout;
        let fail = match (crash, done > timeout_at) {
            (Some((at, rec)), true) if at <= timeout_at => {
                Some((at, FailReason::NodeDown { recover_at: rec }))
            }
            (_, true) => Some((timeout_at, FailReason::Timeout)),
            (Some((at, rec)), false) => Some((at, FailReason::NodeDown { recover_at: rec })),
            (None, false) => None,
        };
        Assessment {
            done,
            cold,
            fail,
            replica,
        }
    }

    /// Commit a successful attempt: consume the queue slot and warmth.
    /// `arrival` is when the stage's data reached the node (pool-size
    /// accounting instant for on-demand boots).
    fn commit(&mut self, job: usize, stage: usize, node: NodeId, arrival: f64, a: &Assessment) {
        let svc = self.service_of(job, stage);
        let wi = svc.idx() * self.sc.nodes() + node.idx();
        if a.cold {
            self.cold_starts += 1;
        }
        match self.pool.as_mut() {
            Some(ps) => {
                if a.replica == usize::MAX || ps.pools[wi].is_empty() {
                    // On-demand boot of a scaled-to-zero cell: the platform
                    // starts one replica (the request just paid its cold
                    // start) and the scaler now owns it.
                    ps.account(arrival);
                    ps.pools[wi].push(Replica {
                        free_at: a.done,
                        last_done: a.done,
                    });
                    ps.scaler.confirm(svc, node, 1);
                } else {
                    let r = &mut ps.pools[wi][a.replica];
                    r.free_at = a.done;
                    r.last_done = a.done;
                }
                ps.completions[svc.idx()].push(a.done);
            }
            None => {
                self.node_free[node.idx()] = a.done;
                self.last_used[wi] = a.done;
            }
        }
    }

    /// Alive replicas of `stage`'s service at time `t`, ordered by
    /// predicted completion from `from` (transfer + queue wait + service),
    /// node index tie-break. Used for retry failover and hedge backups.
    fn candidates(&self, job: usize, stage: usize, from: NodeId, t: f64) -> Vec<NodeId> {
        let svc = self.service_of(job, stage);
        let r = self.stage_data(job, stage);
        let ap = self.ap_at(t);
        let mut alive: Vec<(f64, u32)> = self
            .placement
            .hosts_of(svc)
            .into_iter()
            .filter(|&k| !self.timeline.is_down(k, t))
            .map(|k| {
                let arr = t + ap.transfer_time(from, k, r);
                let wait = match &self.pool {
                    Some(ps) => {
                        let cell = &ps.pools[svc.idx() * self.sc.nodes() + k.idx()];
                        match cell
                            .iter()
                            .map(|rep| rep.free_at)
                            .min_by(|a, b| a.total_cmp(b))
                        {
                            Some(free) => (free - arr).max(0.0),
                            // Scaled to zero: an on-demand boot pays the
                            // cold start before serving.
                            None => self.cfg.cold_start,
                        }
                    }
                    None => (self.node_free[k.idx()] - arr).max(0.0),
                };
                (arr + wait + self.exec_time(job, stage, k), k.0)
            })
            .collect();
        alive.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        alive.into_iter().map(|(_, k)| NodeId(k)).collect()
    }

    /// Resolve a request that can no longer be served from the edge.
    fn resolve_unservable(&mut self, job: usize) {
        self.outcome[job] = Some(if self.cfg.degrade_to_cloud {
            Outcome::Degraded
        } else {
            Outcome::Dropped
        });
    }

    fn backoff_delay(&mut self, attempt: usize) -> f64 {
        let p = &self.cfg.retry;
        let base = p.backoff_base * p.backoff_factor.powi(attempt as i32);
        if p.jitter > 0.0 {
            let u: f64 = self.rng.gen::<f64>();
            base * (1.0 + p.jitter * (2.0 * u - 1.0))
        } else {
            base
        }
    }

    /// Handle a failed attempt: back off and retry, or give up.
    #[allow(clippy::too_many_arguments)]
    fn handle_failure(
        &mut self,
        job: usize,
        stage: usize,
        node: NodeId,
        from: NodeId,
        attempt: usize,
        fail_time: f64,
        reason: FailReason,
    ) {
        match reason {
            FailReason::Loss(idx) => self.loss_used[idx] = true,
            FailReason::Timeout => self.timeouts += 1,
            FailReason::NodeDown { recover_at } => {
                // The crash wiped the victim's queue: it restarts idle once
                // it recovers, so nothing can start on it before then.
                if recover_at.is_finite() {
                    let nodes = self.sc.nodes();
                    let services = self.sc.services();
                    match self.pool.as_mut() {
                        Some(ps) => {
                            for s in 0..services {
                                for rep in ps.pools[s * nodes + node.idx()].iter_mut() {
                                    rep.free_at = rep.free_at.max(recover_at);
                                }
                            }
                        }
                        None => {
                            self.node_free[node.idx()] = self.node_free[node.idx()].max(recover_at);
                        }
                    }
                }
            }
        }
        if attempt >= self.cfg.retry.max_retries {
            self.resolve_unservable(job);
            return;
        }
        self.retried += 1;
        let t = fail_time + self.backoff_delay(attempt);
        self.dispatch(job, stage, from, t, attempt + 1);
    }

    /// Dispatch `stage` of `job` from `from` at time `t`. Attempt 0 follows
    /// the static DP route blindly — liveness is only discovered when the
    /// data arrives — while retries fail over to the best alive replica.
    /// Hedging dry-runs a duplicate when the chosen target looks slow or
    /// doomed. Resolves the request when a failover finds no alive replica.
    fn dispatch(&mut self, job: usize, stage: usize, from: NodeId, t: f64, attempt: usize) {
        let target0 = if attempt == 0 {
            self.routes[self.jobs[job].user].as_ref().map(|r| r[stage])
        } else {
            self.candidates(job, stage, from, t).first().copied()
        };
        let Some(primary) = target0 else {
            self.resolve_unservable(job);
            return;
        };
        let r = self.stage_data(job, stage);
        let arr = t + self.ap_at(t).transfer_time(from, primary, r);

        let mut target = primary;
        let mut dispatch_t = t;
        let mut arrive_t = arr;
        if let Some(h) = self.cfg.retry.hedge_after {
            let pa = self.assess(job, stage, primary, t, arr);
            let slow = pa.fail.is_some() || pa.done - t > h;
            if slow {
                let backup = self
                    .candidates(job, stage, from, t)
                    .into_iter()
                    .find(|&k| k != primary);
                if let Some(backup) = backup {
                    let t2 = t + h; // a real hedger fires only after waiting h
                    let arr2 = t2 + self.ap_at(t2).transfer_time(from, backup, r);
                    let ba = self.assess(job, stage, backup, t2, arr2);
                    let backup_wins = match (&pa.fail, &ba.fail) {
                        (Some(_), None) => true,
                        (None, None) => ba.done < pa.done,
                        _ => false,
                    };
                    if backup_wins {
                        self.hedged += 1;
                        target = backup;
                        dispatch_t = t2;
                        arrive_t = arr2;
                    }
                }
            }
        }

        let svc_ix = self.service_of(job, stage).idx();
        if let Some(ps) = self.pool.as_mut() {
            ps.inflight[svc_ix] += 1;
        }
        self.heap.push(Event {
            time: arrive_t,
            job,
            stage,
            attempt,
            node: target.0,
            from: from.0,
            dispatch: dispatch_t,
            is_arrival: false,
        });
    }

    /// Stage `stage` finished on `node` at `done`: dispatch the next stage
    /// or close out the request.
    fn advance_job(&mut self, job: usize, stage: usize, node: NodeId, done: f64) {
        self.frontier[job] = stage + 1;
        let user = self.jobs[job].user;
        let req = &self.sc.requests[user];
        if stage + 1 < req.chain.len() {
            self.dispatch(job, stage + 1, node, done, 0);
        } else {
            let finish = done + self.ap_at(done).return_time(node, req.location, req.r_out);
            debug_assert!(
                finish >= self.jobs[job].start,
                "job {job} finished before it started"
            );
            self.per_request[job] = Some(finish - self.jobs[job].start);
            self.outcome[job] = Some(Outcome::Completed);
        }
    }

    /// Run scaler ticks (and apply their pool changes) up to time `t`.
    fn run_ticks_until(&mut self, t: f64) {
        let sc = self.sc;
        let placement = self.placement;
        let nodes = sc.nodes();
        loop {
            let Some(ps) = self.pool.as_mut() else { return };
            if ps.next_tick > t {
                return;
            }
            let now = ps.next_tick;
            ps.next_tick += ps.scaler.config().scale_interval;
            for done in ps.completions.iter_mut() {
                done.retain(|&d| d > now);
            }
            let observed: Vec<f64> = (0..ps.inflight.len())
                .map(|i| ps.observed_load(i, now))
                .collect();
            let actions = ps
                .scaler
                .tick(now, &observed, placement, &sc.catalog, &sc.net);
            if actions.is_empty() {
                continue;
            }
            ps.account(now);
            for act in actions {
                let wi = act.service.idx() * nodes + act.node.idx();
                if act.after > act.before {
                    // New replicas boot cold: their first request pays the
                    // cold start (last_done = -inf trips the warmth rule).
                    while (ps.pools[wi].len() as u32) < act.after {
                        ps.pools[wi].push(Replica {
                            free_at: now,
                            last_done: f64::NEG_INFINITY,
                        });
                    }
                } else {
                    // Reclaim idle replicas only (busy ones finish their
                    // request first), most-stale first, index tie-break.
                    let cell = &mut ps.pools[wi];
                    let need = cell.len().saturating_sub(act.after as usize);
                    let mut idle: Vec<usize> = (0..cell.len())
                        .filter(|&i| cell[i].free_at <= now)
                        .collect();
                    idle.sort_by(|&x, &y| {
                        cell[x]
                            .last_done
                            .total_cmp(&cell[y].last_done)
                            .then(x.cmp(&y))
                    });
                    idle.truncate(need);
                    idle.sort_unstable_by(|x, y| y.cmp(x));
                    for i in idle {
                        cell.remove(i);
                    }
                    let actual = cell.len() as u32;
                    if actual != act.after {
                        ps.scaler.confirm(act.service, act.node, actual);
                    }
                }
            }
        }
    }

    /// A request is issued at the user's station: run admission, then
    /// seed the first-stage dispatch (control-plane mode only).
    fn handle_arrival(&mut self, ev: Event) {
        let job = ev.job;
        let user = self.jobs[job].user;
        let chain_len = self.sc.requests[user].chain.len();
        let admitted = match &self.pool {
            Some(ps) => self.sc.requests[user].chain.iter().all(|&m| {
                ps.scaler
                    .admit(m, chain_len, ps.observed_load(m.idx(), ev.time))
            }),
            None => true,
        };
        if !admitted {
            self.outcome[job] = Some(Outcome::Shed);
            return;
        }
        let loc = self.sc.requests[user].location;
        self.dispatch(job, 0, loc, ev.time, 0);
    }

    fn run(&mut self) {
        while let Some(ev) = self.heap.pop() {
            self.run_ticks_until(ev.time);
            if ev.is_arrival {
                self.handle_arrival(ev);
                continue;
            }
            // Every serve-event push incremented its service's in-flight
            // count; the matching pop (stale or not) releases it.
            let svc_ix = self.service_of(ev.job, ev.stage).idx();
            if let Some(ps) = self.pool.as_mut() {
                ps.inflight[svc_ix] = ps.inflight[svc_ix].saturating_sub(1);
            }
            if self.outcome[ev.job].is_some() || self.frontier[ev.job] != ev.stage {
                continue; // stale: the request was already resolved
            }
            let node = NodeId(ev.node);
            let a = self.assess(ev.job, ev.stage, node, ev.dispatch, ev.time);
            match a.fail {
                Some((at, reason)) => {
                    self.handle_failure(
                        ev.job,
                        ev.stage,
                        node,
                        NodeId(ev.from),
                        ev.attempt,
                        at,
                        reason,
                    );
                }
                None => {
                    self.commit(ev.job, ev.stage, node, ev.time, &a);
                    self.advance_job(ev.job, ev.stage, node, a.done);
                }
            }
        }
    }
}

/// Run the emulator for `placement` on `scenario`.
///
/// ```
/// use socl_core::SoclSolver;
/// use socl_model::ScenarioConfig;
/// use socl_sim::{run_testbed, TestbedConfig};
///
/// let sc = ScenarioConfig::paper(8, 20).build(3);
/// let placement = SoclSolver::new().solve(&sc).placement;
/// let measured = run_testbed(&sc, &placement, &TestbedConfig::default());
/// assert_eq!(measured.fallbacks, 0);
/// assert_eq!(measured.completed + measured.fallbacks, measured.issued);
/// assert!(measured.mean > 0.0 && measured.max >= measured.mean);
/// ```
pub fn run_testbed(sc: &Scenario, placement: &Placement, cfg: &TestbedConfig) -> TestbedResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let users = sc.requests.len();
    let horizon = cfg.epochs as f64 * cfg.epoch_secs;

    // Static DP routes per request — the dispatcher's nominal plan; under
    // faults it deviates to the best alive replica.
    let routes: Vec<Option<Vec<NodeId>>> = sc
        .requests
        .iter()
        .map(
            |r| match optimal_route(r, placement, &sc.net, &sc.ap, &sc.catalog) {
                RouteOutcome::Edge { route, .. } => Some(route),
                RouteOutcome::CloudFallback => None,
            },
        )
        .collect();

    // Job list. Legacy: one job per (epoch, user) with jittered arrival.
    // With `epoch_arrivals`, epoch `e` issues `arrivals[e]` requests from
    // seeded-uniformly drawn users (diurnal load shaping).
    let mut jobs: Vec<Job> = Vec::with_capacity(cfg.epochs * users);
    for e in 0..cfg.epochs {
        let base = e as f64 * cfg.epoch_secs;
        let n = match &cfg.epoch_arrivals {
            Some(v) if !v.is_empty() && users > 0 => v[e.min(v.len() - 1)],
            _ => users,
        };
        for i in 0..n {
            let user = if cfg.epoch_arrivals.is_some() {
                rng.gen_range(0..users)
            } else {
                i
            };
            let jitter = rng.gen_range(0.0..cfg.epoch_secs);
            jobs.push(Job {
                user,
                arrival: base + jitter,
                start: 0.0,
                epoch: e,
            });
        }
    }

    let timeline = FaultTimeline::build(&cfg.faults, sc.nodes());

    // All-pairs snapshots: rebuild the path metrics at every link-state
    // change point (degradations compound until restored).
    let mut aps: Vec<(f64, AllPairs)> = vec![(f64::NEG_INFINITY, sc.ap.clone())];
    if !timeline.link_changes().is_empty() {
        let mut factors: Vec<f64> = vec![1.0; sc.net.link_count()];
        for &(t, link, change) in timeline.link_changes() {
            if link >= factors.len() {
                continue;
            }
            factors[link] = change.unwrap_or(1.0).max(1.0);
            let mut net = socl_net::EdgeNetwork::new();
            for k in sc.net.node_ids() {
                net.push_server(sc.net.server(k).clone());
            }
            for (idx, l) in sc.net.links().iter().enumerate() {
                let mut params = l.params;
                params.bandwidth /= factors[idx];
                net.add_link(l.a, l.b, params);
            }
            aps.push((t, AllPairs::build(&net)));
        }
    }

    // Serverless control plane: seed replica pools from the placement
    // (one warm replica per deployed cell, raised to the min-replica
    // floor), then let the scaler drive pool sizes mid-run.
    let pool = cfg.autoscale.as_ref().map(|ac| {
        let mut scaler = Autoscaler::new(ac.clone(), cfg.cold_start, sc.services(), sc.nodes());
        scaler.seed_from_placement(placement, &sc.catalog, &sc.net);
        let mut pools: Vec<Vec<Replica>> = vec![Vec::new(); sc.services() * sc.nodes()];
        for (m, k, count) in scaler.counts().iter_positive() {
            pools[m.idx() * sc.nodes() + k.idx()] = (0..count)
                .map(|_| Replica {
                    free_at: 0.0,
                    last_done: f64::NEG_INFINITY,
                })
                .collect();
        }
        PoolState {
            scaler,
            pools,
            inflight: vec![0; sc.services()],
            completions: vec![Vec::new(); sc.services()],
            next_tick: 0.0,
            replica_seconds: 0.0,
            last_change: 0.0,
        }
    });

    let n_jobs = jobs.len();
    let loss_count = timeline.losses().len();
    let mut engine = Engine {
        sc,
        placement,
        cfg,
        timeline,
        aps,
        routes,
        jobs,
        heap: BinaryHeap::new(),
        rng,
        node_free: vec![0.0f64; sc.nodes()],
        last_used: vec![f64::NEG_INFINITY; sc.services() * sc.nodes()],
        loss_used: vec![false; loss_count],
        outcome: vec![None; n_jobs],
        frontier: vec![0usize; n_jobs],
        per_request: vec![None; n_jobs],
        cold_starts: 0,
        retried: 0,
        hedged: 0,
        timeouts: 0,
        pool,
    };

    // Seed the runs: upload from each user's station to the first stage.
    // With the control plane on, requests enter through arrival events so
    // admission control sees live in-flight state at issue time.
    let mut fallbacks = 0usize;
    for j in 0..n_jobs {
        let user = engine.jobs[j].user;
        if engine.routes[user].is_none() {
            fallbacks += 1;
            engine.outcome[j] = Some(Outcome::Fallback);
            continue;
        }
        let arrival = engine.jobs[j].arrival;
        engine.jobs[j].start = arrival;
        let loc = sc.requests[user].location;
        if engine.pool.is_some() {
            engine.heap.push(Event {
                time: arrival,
                job: j,
                stage: 0,
                attempt: 0,
                node: loc.0,
                from: loc.0,
                dispatch: arrival,
                is_arrival: true,
            });
        } else {
            engine.dispatch(j, 0, loc, arrival, 0);
        }
    }

    engine.run();

    // Close the warm-pool integral at the run horizon.
    if let Some(ps) = engine.pool.as_mut() {
        let end = horizon.max(ps.last_change);
        ps.account(end);
    }

    // Aggregate (per-epoch via each job's epoch tag — epochs may issue
    // different request counts under `epoch_arrivals`).
    let per_request = engine.per_request;
    let mut epoch_sum = vec![0.0f64; cfg.epochs];
    let mut epoch_count = vec![0usize; cfg.epochs];
    for (j, lat) in per_request.iter().enumerate() {
        if let Some(l) = lat {
            let e = engine.jobs[j].epoch;
            epoch_sum[e] += l;
            epoch_count[e] += 1;
        }
    }
    let per_epoch_mean: Vec<f64> = epoch_sum
        .iter()
        .zip(&epoch_count)
        .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect();
    let served: Vec<f64> = per_request.iter().flatten().copied().collect();
    let mean = if served.is_empty() {
        0.0
    } else {
        served.iter().sum::<f64>() / served.len() as f64
    };
    let max = served.iter().copied().fold(0.0, f64::max);

    let mut completed = 0usize;
    let mut degraded = 0usize;
    let mut dropped = 0usize;
    let mut shed = 0usize;
    for out in engine.outcome.iter() {
        match out {
            Some(Outcome::Completed) => completed += 1,
            Some(Outcome::Degraded) => degraded += 1,
            Some(Outcome::Dropped) => dropped += 1,
            Some(Outcome::Shed) => shed += 1,
            Some(Outcome::Fallback) => {}
            None => {
                // Every dispatched request must resolve; a hole here would
                // be an emulator bug. Surface it loudly in debug builds and
                // fold it into `dropped` so accounting still conserves.
                debug_assert!(false, "request left unresolved by the event loop");
                dropped += 1;
            }
        }
    }
    let issued = n_jobs;

    let (scale_ups, scale_downs, replica_seconds) = match &engine.pool {
        Some(ps) => {
            let (u, d) = ps.scaler.events();
            (u as usize, d as usize, ps.replica_seconds)
        }
        None => (0, 0, 0.0),
    };

    TestbedResult {
        per_request,
        per_epoch_mean,
        mean,
        max,
        cold_starts: engine.cold_starts,
        fallbacks,
        issued,
        completed,
        retried: engine.retried,
        hedged: engine.hedged,
        timeouts: engine.timeouts,
        degraded,
        dropped,
        availability: if issued == 0 {
            1.0
        } else {
            completed as f64 / issued as f64
        },
        mttr: engine.timeline.mttr(horizon),
        scale_up_events: scale_ups,
        scale_down_events: scale_downs,
        shed_requests: shed,
        replica_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultEvent, FaultKind, FaultPlan, Targeting};
    use socl_core::SoclSolver;
    use socl_model::ScenarioConfig;

    fn scenario(seed: u64) -> Scenario {
        ScenarioConfig::paper(8, 30).build(seed)
    }

    #[test]
    fn testbed_measures_every_served_request() {
        let sc = scenario(1);
        let placement = SoclSolver::new().solve(&sc).placement;
        let res = run_testbed(&sc, &placement, &TestbedConfig::default());
        assert_eq!(res.fallbacks, 0);
        assert_eq!(res.per_request.len(), sc.users());
        for lat in res.per_request.iter().flatten() {
            assert!(*lat > 0.0);
        }
        assert!(res.max >= res.mean && res.mean > 0.0);
        assert_eq!(res.completed, sc.users());
        assert_eq!(res.availability, 1.0);
        assert_eq!(res.mttr, 0.0);
    }

    #[test]
    fn queueing_makes_testbed_latency_at_least_unloaded_latency() {
        let sc = scenario(2);
        let placement = SoclSolver::new().solve(&sc).placement;
        let ev = socl_model::evaluate(&sc, &placement);
        let res = run_testbed(&sc, &placement, &TestbedConfig::default());
        // Unloaded DP latency is a lower bound on the queued latency.
        // (Same routes; the testbed adds waiting and cold starts.)
        assert!(
            res.mean + 1e-9 >= ev.mean_latency() * 0.999,
            "testbed mean {} below unloaded mean {}",
            res.mean,
            ev.mean_latency()
        );
    }

    #[test]
    fn empty_placement_all_fallbacks() {
        let sc = scenario(3);
        let placement = Placement::empty(sc.services(), sc.nodes());
        let res = run_testbed(&sc, &placement, &TestbedConfig::default());
        assert_eq!(res.fallbacks, sc.users());
        assert!(res.per_request.iter().all(|r| r.is_none()));
        assert_eq!(res.mean, 0.0);
        assert_eq!(
            res.completed + res.degraded + res.dropped + res.fallbacks,
            res.issued
        );
    }

    #[test]
    fn multiple_epochs_reuse_warm_instances() {
        let sc = scenario(4);
        let placement = SoclSolver::new().solve(&sc).placement;
        let cfg = TestbedConfig {
            epochs: 4,
            ..TestbedConfig::default()
        };
        let res = run_testbed(&sc, &placement, &cfg);
        assert_eq!(res.per_epoch_mean.len(), 4);
        // Cold starts happen at most once per (instance, cold period); with
        // keep_warm (600 s) > epoch (300 s), later epochs stay warm, so cold
        // starts are far fewer than stage executions.
        let total_stages: usize = sc.requests.iter().map(|r| r.len()).sum();
        assert!(res.cold_starts <= total_stages, "{}", res.cold_starts);
        assert!(res.cold_starts > 0);
    }

    #[test]
    fn contention_raises_latency_versus_a_big_cluster() {
        // The same workload on a placement spread across all nodes beats a
        // single-node pile-up.
        let sc = scenario(5);
        let spread = Placement::full(sc.services(), sc.nodes());
        let mut pile = Placement::empty(sc.services(), sc.nodes());
        for m in sc.requested_services() {
            pile.set(m, socl_net::NodeId(0), true);
        }
        let cfg = TestbedConfig::default();
        let res_spread = run_testbed(&sc, &spread, &cfg);
        let res_pile = run_testbed(&sc, &pile, &cfg);
        assert!(
            res_pile.mean > res_spread.mean,
            "pile {} should exceed spread {}",
            res_pile.mean,
            res_spread.mean
        );
    }

    #[test]
    fn percentiles_are_ordered() {
        let sc = scenario(7);
        let placement = SoclSolver::new().solve(&sc).placement;
        let res = run_testbed(&sc, &placement, &TestbedConfig::default());
        let p50 = res.latency_percentile(0.5);
        let p95 = res.latency_percentile(0.95);
        assert!(p50 > 0.0);
        assert!(p95 >= p50);
        assert!(res.max >= p95 - 1e-12);
        assert_eq!(res.median(), p50);
    }

    #[test]
    fn testbed_is_deterministic() {
        let sc = scenario(6);
        let placement = SoclSolver::new().solve(&sc).placement;
        let cfg = TestbedConfig::default();
        let a = run_testbed(&sc, &placement, &cfg);
        let b = run_testbed(&sc, &placement, &cfg);
        assert_eq!(a.per_request, b.per_request);
        assert_eq!(a.cold_starts, b.cold_starts);
    }

    // ---- fault-injection behavior ---------------------------------------

    /// A schedule crashing `node` over `[t0, t1)`.
    fn crash(node: u32, t0: f64, t1: f64) -> FaultSchedule {
        FaultSchedule::from_events(vec![
            FaultEvent {
                time: t0,
                kind: FaultKind::NodeCrash(NodeId(node)),
            },
            FaultEvent {
                time: t1,
                kind: FaultKind::NodeRecover(NodeId(node)),
            },
        ])
    }

    #[test]
    fn crash_without_retries_degrades_requests() {
        let sc = scenario(8);
        // Single-node pile-up: crashing node 0 takes every replica down.
        let mut pile = Placement::empty(sc.services(), sc.nodes());
        for m in sc.requested_services() {
            pile.set(m, NodeId(0), true);
        }
        let cfg = TestbedConfig {
            faults: crash(0, 0.0, 300.0),
            ..TestbedConfig::default()
        };
        let res = run_testbed(&sc, &pile, &cfg);
        assert_eq!(res.completed, 0, "node 0 was down the whole run");
        assert_eq!(res.degraded + res.fallbacks, res.issued);
        assert!(res.availability < 1.0);
        assert!(res.mttr > 0.0);
        // Degraded requests are charged the cloud penalty.
        assert!(res.effective_mean(sc.cloud_penalty) > 0.0);
    }

    #[test]
    fn no_degrade_means_dropped() {
        let sc = scenario(8);
        let mut pile = Placement::empty(sc.services(), sc.nodes());
        for m in sc.requested_services() {
            pile.set(m, NodeId(0), true);
        }
        let cfg = TestbedConfig {
            faults: crash(0, 0.0, 300.0),
            degrade_to_cloud: false,
            ..TestbedConfig::default()
        };
        let res = run_testbed(&sc, &pile, &cfg);
        assert_eq!(res.degraded, 0);
        assert_eq!(res.dropped + res.fallbacks, res.issued);
    }

    #[test]
    fn retries_reroute_around_a_crashed_node() {
        let sc = scenario(9);
        // Full placement: every node hosts every service, so a single crash
        // always leaves alive replicas for the dispatcher to fall over to.
        let placement = Placement::full(sc.services(), sc.nodes());
        let cfg = TestbedConfig {
            faults: crash(0, 0.0, 400.0),
            retry: RetryPolicy {
                max_retries: 3,
                ..RetryPolicy::default()
            },
            ..TestbedConfig::default()
        };
        let res = run_testbed(&sc, &placement, &cfg);
        assert_eq!(
            res.completed + res.fallbacks,
            res.issued,
            "with replicas everywhere and retries on, nothing degrades: {res:?}"
        );
        assert_eq!(res.degraded + res.dropped, 0);
    }

    #[test]
    fn faulted_run_is_deterministic_and_conserves_requests() {
        let sc = scenario(10);
        let placement = SoclSolver::new().solve(&sc).placement;
        let plan = FaultPlan::moderate(300.0).with_targeting(Targeting::Critical);
        let cfg = TestbedConfig {
            faults: plan.generate(&sc.net, &placement, sc.users(), 5),
            retry: RetryPolicy {
                max_retries: 2,
                timeout: 60.0,
                ..RetryPolicy::default()
            },
            ..TestbedConfig::default()
        };
        let a = run_testbed(&sc, &placement, &cfg);
        let b = run_testbed(&sc, &placement, &cfg);
        assert_eq!(a, b, "same seed + schedule must reproduce exactly");
        assert_eq!(a.completed + a.degraded + a.dropped + a.fallbacks, a.issued);
    }

    #[test]
    fn hedging_commits_duplicates_when_the_primary_is_slow() {
        let sc = scenario(11);
        let placement = Placement::full(sc.services(), sc.nodes());
        // An aggressive hedge threshold forces duplicates: any stage slower
        // than a microsecond hedges, and the backup replica often wins on a
        // full placement.
        let cfg = TestbedConfig {
            retry: RetryPolicy {
                hedge_after: Some(1e-6),
                ..RetryPolicy::default()
            },
            ..TestbedConfig::default()
        };
        let res = run_testbed(&sc, &placement, &cfg);
        assert!(res.hedged > 0, "expected hedged duplicates, got {res:?}");
        assert_eq!(res.completed + res.fallbacks, res.issued);
    }

    #[test]
    fn tight_timeouts_count_and_still_conserve() {
        let sc = scenario(12);
        let placement = SoclSolver::new().solve(&sc).placement;
        let cfg = TestbedConfig {
            retry: RetryPolicy {
                timeout: 1e-4, // unmeetable: every attempt times out
                max_retries: 1,
                ..RetryPolicy::default()
            },
            ..TestbedConfig::default()
        };
        let res = run_testbed(&sc, &placement, &cfg);
        assert!(res.timeouts > 0);
        assert!(res.retried > 0);
        assert_eq!(
            res.completed + res.degraded + res.dropped + res.fallbacks,
            res.issued
        );
    }

    #[test]
    fn link_degradation_slows_transfers() {
        let sc = scenario(13);
        let placement = SoclSolver::new().solve(&sc).placement;
        let mut events = Vec::new();
        for link in 0..sc.net.link_count() {
            events.push(FaultEvent {
                time: 0.0,
                kind: FaultKind::LinkDegrade { link, factor: 50.0 },
            });
        }
        let cfg = TestbedConfig {
            faults: FaultSchedule::from_events(events),
            ..TestbedConfig::default()
        };
        let slow = run_testbed(&sc, &placement, &cfg);
        let fast = run_testbed(&sc, &placement, &TestbedConfig::default());
        assert!(
            slow.mean > fast.mean,
            "degraded links ({}) should beat nominal ({})",
            slow.mean,
            fast.mean
        );
    }

    #[test]
    fn instance_kills_cause_extra_cold_starts() {
        let sc = scenario(14);
        let placement = SoclSolver::new().solve(&sc).placement;
        let baseline = run_testbed(&sc, &placement, &TestbedConfig::default());
        let mut events = Vec::new();
        for (m, k) in placement.iter_deployed() {
            events.push(FaultEvent {
                time: 150.0,
                kind: FaultKind::InstanceKill {
                    service: m,
                    node: k,
                },
            });
        }
        let cfg = TestbedConfig {
            faults: FaultSchedule::from_events(events),
            ..TestbedConfig::default()
        };
        let killed = run_testbed(&sc, &placement, &cfg);
        assert!(
            killed.cold_starts > baseline.cold_starts,
            "cold-kills should add cold starts ({} vs {})",
            killed.cold_starts,
            baseline.cold_starts
        );
    }

    #[test]
    fn request_loss_is_retried_or_degraded() {
        let sc = scenario(15);
        let placement = SoclSolver::new().solve(&sc).placement;
        // Lose every user's first transfer window; without retries those
        // requests degrade, with retries they recover.
        let events: Vec<FaultEvent> = (0..sc.users())
            .map(|u| FaultEvent {
                time: 150.0,
                kind: FaultKind::RequestLoss { user: u },
            })
            .collect();
        let faults = FaultSchedule::from_events(events);
        let no_retry = run_testbed(
            &sc,
            &placement,
            &TestbedConfig {
                faults: faults.clone(),
                ..TestbedConfig::default()
            },
        );
        let with_retry = run_testbed(
            &sc,
            &placement,
            &TestbedConfig {
                faults,
                retry: RetryPolicy {
                    max_retries: 2,
                    ..RetryPolicy::default()
                },
                ..TestbedConfig::default()
            },
        );
        assert!(with_retry.completed >= no_retry.completed);
        assert_eq!(
            with_retry.completed + with_retry.degraded + with_retry.fallbacks,
            with_retry.issued
        );
    }

    // ---- serverless control plane ---------------------------------------

    use socl_autoscale::{AdmissionPolicy, AutoscaleConfig, ScalingMode};

    fn scaled_cfg(mode: ScalingMode) -> TestbedConfig {
        TestbedConfig {
            epochs: 3,
            epoch_secs: 60.0,
            autoscale: Some(AutoscaleConfig {
                mode,
                scale_interval: 2.0,
                stable_window: 20.0,
                down_cooldown: 10.0,
                min_replicas: 0,
                keep_alive: socl_autoscale::KeepAlivePolicy::Fixed(15.0),
                ..AutoscaleConfig::default()
            }),
            ..TestbedConfig::default()
        }
    }

    #[test]
    fn control_plane_conserves_requests_and_scales() {
        let sc = scenario(20);
        let placement = SoclSolver::new().solve(&sc).placement;
        let cfg = scaled_cfg(ScalingMode::Reactive);
        let res = run_testbed(&sc, &placement, &cfg);
        assert_eq!(
            res.completed + res.degraded + res.dropped + res.fallbacks + res.shed_requests,
            res.issued
        );
        assert!(res.replica_seconds > 0.0, "pools must accrue billed time");
        // Idle gaps between sparse requests trigger scale-downs.
        assert!(
            res.scale_down_events > 0,
            "expected scale-downs over 3 sparse epochs: {res:?}"
        );
    }

    #[test]
    fn control_plane_is_deterministic() {
        let sc = scenario(21);
        let placement = SoclSolver::new().solve(&sc).placement;
        let cfg = scaled_cfg(ScalingMode::Predictive);
        let a = run_testbed(&sc, &placement, &cfg);
        let b = run_testbed(&sc, &placement, &cfg);
        assert_eq!(a, b, "same seed + config must reproduce exactly");
    }

    #[test]
    fn scale_to_zero_never_strands_a_request() {
        let sc = scenario(22);
        let placement = SoclSolver::new().solve(&sc).placement;
        // Aggressive scale-to-zero: tiny keep-alive, no cooldown, long
        // epochs so pools collapse between arrivals.
        let cfg = TestbedConfig {
            epochs: 4,
            epoch_secs: 300.0,
            autoscale: Some(AutoscaleConfig {
                scale_interval: 1.0,
                stable_window: 5.0,
                down_cooldown: 0.0,
                min_replicas: 0,
                keep_alive: socl_autoscale::KeepAlivePolicy::Fixed(2.0),
                ..AutoscaleConfig::default()
            }),
            ..TestbedConfig::default()
        };
        let res = run_testbed(&sc, &placement, &cfg);
        // Every admitted request resolves: on-demand boots serve requests
        // that land on scaled-to-zero cells (paying cold starts instead).
        assert_eq!(res.completed + res.fallbacks, res.issued);
        assert_eq!(res.dropped, 0);
        assert!(res.scale_down_events > 0);
        assert!(res.cold_starts > 0);
    }

    #[test]
    fn static_pools_match_the_replica_count_of_the_placement() {
        let sc = scenario(23);
        let placement = SoclSolver::new().solve(&sc).placement;
        let cfg = TestbedConfig {
            autoscale: Some(AutoscaleConfig {
                mode: ScalingMode::Static,
                min_replicas: 0,
                ..AutoscaleConfig::default()
            }),
            ..TestbedConfig::default()
        };
        let res = run_testbed(&sc, &placement, &cfg);
        assert_eq!(res.scale_up_events, 0);
        assert_eq!(res.scale_down_events, 0);
        // Static pools: replica-seconds = instances × horizon exactly.
        let expected = placement.total_instances() as f64 * 300.0;
        assert!(
            (res.replica_seconds - expected).abs() < 1e-6,
            "{} vs {expected}",
            res.replica_seconds
        );
    }

    #[test]
    fn diurnal_arrivals_shape_the_workload() {
        let sc = scenario(24);
        let placement = SoclSolver::new().solve(&sc).placement;
        let cfg = TestbedConfig {
            epochs: 3,
            epoch_secs: 60.0,
            epoch_arrivals: Some(vec![5, 40, 5]),
            ..TestbedConfig::default()
        };
        let res = run_testbed(&sc, &placement, &cfg);
        assert_eq!(res.issued, 50);
        assert_eq!(res.per_epoch_mean.len(), 3);
        assert_eq!(
            res.completed + res.degraded + res.dropped + res.fallbacks + res.shed_requests,
            res.issued
        );
    }

    #[test]
    fn admission_sheds_under_overload_and_prefers_short_chains() {
        let sc = scenario(25);
        // Single-node pile-up with a tiny capacity ceiling and a flash
        // crowd: the shedder must engage.
        let mut pile = Placement::empty(sc.services(), sc.nodes());
        for m in sc.requested_services() {
            pile.set(m, NodeId(0), true);
        }
        let cfg = TestbedConfig {
            epochs: 1,
            epoch_secs: 10.0,
            epoch_arrivals: Some(vec![400]),
            autoscale: Some(AutoscaleConfig {
                max_replicas_per_node: 1,
                admission: AdmissionPolicy {
                    enabled: true,
                    queue_limit: 1.0,
                    classes: 2,
                    strict_overload: 4.0,
                },
                ..AutoscaleConfig::default()
            }),
            ..TestbedConfig::default()
        };
        let res = run_testbed(&sc, &pile, &cfg);
        assert!(res.shed_requests > 0, "flash crowd must shed: {res:?}");
        assert_eq!(
            res.completed + res.degraded + res.dropped + res.fallbacks + res.shed_requests,
            res.issued
        );
        // Shed requests are charged the cloud penalty in the effective mean.
        assert!(res.effective_mean(sc.cloud_penalty) > res.mean);
    }

    #[test]
    fn autoscaling_beats_static_pools_under_a_flash_crowd() {
        let sc = scenario(26);
        let placement = SoclSolver::new().solve(&sc).placement;
        // Calm → flash crowd → calm. The crowd must actually saturate the
        // static pools (one replica per cell), so it is large and the
        // epochs short; a tight concurrency target makes the scaler react.
        let arrivals = vec![10, 10, 400, 10];
        let base = TestbedConfig {
            epochs: 4,
            epoch_secs: 30.0,
            epoch_arrivals: Some(arrivals),
            ..TestbedConfig::default()
        };
        let mk = |mode| TestbedConfig {
            autoscale: Some(AutoscaleConfig {
                mode,
                target_concurrency: 1.0,
                scale_interval: 1.0,
                stable_window: 10.0,
                panic_window: 4.0,
                min_replicas: 1,
                ..AutoscaleConfig::default()
            }),
            ..base.clone()
        };
        let stat = run_testbed(&sc, &placement, &mk(ScalingMode::Static));
        let reactive = run_testbed(&sc, &placement, &mk(ScalingMode::Reactive));
        assert!(
            reactive.latency_percentile(0.99) < stat.latency_percentile(0.99),
            "reactive p99 {} should beat static p99 {}",
            reactive.latency_percentile(0.99),
            stat.latency_percentile(0.99)
        );
        assert!(reactive.scale_up_events > 0);
    }
}

//! Discrete-event testbed emulator (the Kubernetes-cluster stand-in).
//!
//! The paper's Section V.C runs RP/JDR/SoCL placements on a 17-machine
//! cluster and records per-request latency. This emulator reproduces the
//! measurement pipeline:
//!
//! * requests arrive with uniform jitter inside each epoch (the paper's
//!   "users issued requests every 5 minutes on average"),
//! * every chain stage queues FIFO on its host's CPU (service time
//!   `q(m)/c(v)`, non-preemptive) — contention is real: two requests on one
//!   node wait on each other, which is how unbalanced placements (RP) grow
//!   latency spikes,
//! * transfers between stages are delayed by the routed path's bandwidth,
//! * serverless cold starts: an instance idle for longer than `keep_warm`
//!   pays `cold_start` before serving (warm instances nearby — SoCL's
//!   storage-planning goal — avoid this).
//!
//! Routing follows the exact per-request DP for the placement under test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use socl_model::{optimal_route, Placement, RouteOutcome, Scenario};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Emulator parameters.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Number of epochs to run.
    pub epochs: usize,
    /// Epoch length in seconds (paper: 5 minutes).
    pub epoch_secs: f64,
    /// Cold-start penalty in seconds for an instance gone cold.
    pub cold_start: f64,
    /// Idle time after which an instance goes cold.
    pub keep_warm: f64,
    /// Arrival jitter seed.
    pub seed: u64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        Self {
            epochs: 1,
            epoch_secs: 300.0,
            cold_start: 0.5,
            keep_warm: 600.0,
            seed: 0,
        }
    }
}

/// Measured latencies.
#[derive(Debug, Clone)]
pub struct TestbedResult {
    /// End-to-end latency per (epoch, request), seconds; `None` for cloud
    /// fallbacks.
    pub per_request: Vec<Option<f64>>,
    /// Mean latency per epoch (fallbacks excluded).
    pub per_epoch_mean: Vec<f64>,
    /// Global mean and max.
    pub mean: f64,
    pub max: f64,
    /// Cold starts incurred.
    pub cold_starts: usize,
    /// Requests that had no edge route.
    pub fallbacks: usize,
}

impl TestbedResult {
    /// `p`-quantile of served-request latencies (seconds); 0 when nothing
    /// was served.
    pub fn latency_percentile(&self, p: f64) -> f64 {
        let served: Vec<f64> = self.per_request.iter().flatten().copied().collect();
        socl_model::stats::percentile(&served, p)
    }

    /// Median served latency, seconds.
    pub fn median(&self) -> f64 {
        self.latency_percentile(0.5)
    }
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    /// Request index within the flattened (epoch × request) list.
    job: usize,
    /// Chain stage about to be *served* (arrival at the stage's node).
    stage: usize,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.job == other.job && self.stage == other.stage
    }
}
impl Eq for Event {}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by time, deterministic tie-breaks.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.job.cmp(&self.job))
            .then(other.stage.cmp(&self.stage))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Run the emulator for `placement` on `scenario`.
///
/// ```
/// use socl_core::SoclSolver;
/// use socl_model::ScenarioConfig;
/// use socl_sim::{run_testbed, TestbedConfig};
///
/// let sc = ScenarioConfig::paper(8, 20).build(3);
/// let placement = SoclSolver::new().solve(&sc).placement;
/// let measured = run_testbed(&sc, &placement, &TestbedConfig::default());
/// assert_eq!(measured.fallbacks, 0);
/// assert!(measured.mean > 0.0 && measured.max >= measured.mean);
/// ```
pub fn run_testbed(sc: &Scenario, placement: &Placement, cfg: &TestbedConfig) -> TestbedResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let users = sc.requests.len();

    // Static routes per request (recomputed per epoch job set is identical —
    // the placement and request set do not change inside one testbed run).
    let routes: Vec<Option<Vec<socl_net::NodeId>>> = sc
        .requests
        .iter()
        .map(|r| match optimal_route(r, placement, &sc.net, &sc.ap, &sc.catalog) {
            RouteOutcome::Edge { route, .. } => Some(route),
            RouteOutcome::CloudFallback => None,
        })
        .collect();

    // Job list: one job per (epoch, user) with jittered arrival.
    struct Job {
        user: usize,
        arrival: f64,
        start: f64,
    }
    let mut jobs: Vec<Job> = Vec::with_capacity(cfg.epochs * users);
    for e in 0..cfg.epochs {
        let base = e as f64 * cfg.epoch_secs;
        for u in 0..users {
            let jitter = rng.gen_range(0.0..cfg.epoch_secs);
            jobs.push(Job {
                user: u,
                arrival: base + jitter,
                start: 0.0,
            });
        }
    }

    // Node CPU availability and per-instance warmth.
    let mut node_free = vec![0.0f64; sc.nodes()];
    let mut last_used = vec![f64::NEG_INFINITY; sc.services() * sc.nodes()];
    let mut cold_starts = 0usize;

    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    let mut per_request: Vec<Option<f64>> = vec![None; jobs.len()];
    let mut fallbacks = 0usize;

    // Seed events: arrival + upload transfer to the first stage's node.
    for (j, job) in jobs.iter_mut().enumerate() {
        let req = &sc.requests[job.user];
        match &routes[job.user] {
            None => {
                fallbacks += 1;
                per_request[j] = None;
            }
            Some(route) => {
                job.start = job.arrival;
                let t_arrive = job.arrival + sc.ap.transfer_time(req.location, route[0], req.r_in);
                heap.push(Event {
                    time: t_arrive,
                    job: j,
                    stage: 0,
                });
            }
        }
    }

    // Event loop: chronological FIFO service at each node.
    while let Some(Event { time, job, stage }) = heap.pop() {
        let user = jobs[job].user;
        let req = &sc.requests[user];
        let route = routes[user].as_ref().expect("fallback jobs emit no events");
        let node = route[stage];
        let svc = req.chain[stage];

        // Cold start if the instance went cold.
        let warm_idx = svc.idx() * sc.nodes() + node.idx();
        let mut service_time = sc.catalog.compute(svc) / sc.net.compute(node);
        if time - last_used[warm_idx] > cfg.keep_warm {
            service_time += cfg.cold_start;
            cold_starts += 1;
        }

        let start = time.max(node_free[node.idx()]);
        let done = start + service_time;
        node_free[node.idx()] = done;
        last_used[warm_idx] = done;

        if stage + 1 < route.len() {
            let t_next = done + sc.ap.transfer_time(node, route[stage + 1], req.edge_data[stage]);
            heap.push(Event {
                time: t_next,
                job,
                stage: stage + 1,
            });
        } else {
            let finish = done + sc.ap.return_time(node, req.location, req.r_out);
            per_request[job] = Some(finish - jobs[job].start);
        }
    }

    // Aggregate.
    let mut per_epoch_mean = Vec::with_capacity(cfg.epochs);
    for e in 0..cfg.epochs {
        let slice = &per_request[e * users..(e + 1) * users];
        let served: Vec<f64> = slice.iter().flatten().copied().collect();
        per_epoch_mean.push(if served.is_empty() {
            0.0
        } else {
            served.iter().sum::<f64>() / served.len() as f64
        });
    }
    let served: Vec<f64> = per_request.iter().flatten().copied().collect();
    let mean = if served.is_empty() {
        0.0
    } else {
        served.iter().sum::<f64>() / served.len() as f64
    };
    let max = served.iter().copied().fold(0.0, f64::max);

    TestbedResult {
        per_request,
        per_epoch_mean,
        mean,
        max,
        cold_starts,
        fallbacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_core::SoclSolver;
    use socl_model::ScenarioConfig;

    fn scenario(seed: u64) -> Scenario {
        ScenarioConfig::paper(8, 30).build(seed)
    }

    #[test]
    fn testbed_measures_every_served_request() {
        let sc = scenario(1);
        let placement = SoclSolver::new().solve(&sc).placement;
        let res = run_testbed(&sc, &placement, &TestbedConfig::default());
        assert_eq!(res.fallbacks, 0);
        assert_eq!(res.per_request.len(), sc.users());
        for lat in res.per_request.iter().flatten() {
            assert!(*lat > 0.0);
        }
        assert!(res.max >= res.mean && res.mean > 0.0);
    }

    #[test]
    fn queueing_makes_testbed_latency_at_least_unloaded_latency() {
        let sc = scenario(2);
        let placement = SoclSolver::new().solve(&sc).placement;
        let ev = socl_model::evaluate(&sc, &placement);
        let res = run_testbed(&sc, &placement, &TestbedConfig::default());
        // Unloaded DP latency is a lower bound on the queued latency.
        // (Same routes; the testbed adds waiting and cold starts.)
        assert!(res.mean + 1e-9 >= ev.mean_latency() * 0.999,
            "testbed mean {} below unloaded mean {}", res.mean, ev.mean_latency());
    }

    #[test]
    fn empty_placement_all_fallbacks() {
        let sc = scenario(3);
        let placement = Placement::empty(sc.services(), sc.nodes());
        let res = run_testbed(&sc, &placement, &TestbedConfig::default());
        assert_eq!(res.fallbacks, sc.users());
        assert!(res.per_request.iter().all(|r| r.is_none()));
        assert_eq!(res.mean, 0.0);
    }

    #[test]
    fn multiple_epochs_reuse_warm_instances() {
        let sc = scenario(4);
        let placement = SoclSolver::new().solve(&sc).placement;
        let cfg = TestbedConfig {
            epochs: 4,
            ..TestbedConfig::default()
        };
        let res = run_testbed(&sc, &placement, &cfg);
        assert_eq!(res.per_epoch_mean.len(), 4);
        // Cold starts happen at most once per (instance, cold period); with
        // keep_warm (600 s) > epoch (300 s), later epochs stay warm, so cold
        // starts are far fewer than stage executions.
        let total_stages: usize = sc.requests.iter().map(|r| r.len()).sum();
        assert!(res.cold_starts <= total_stages, "{}", res.cold_starts);
        assert!(res.cold_starts > 0);
    }

    #[test]
    fn contention_raises_latency_versus_a_big_cluster() {
        // The same workload on a placement spread across all nodes beats a
        // single-node pile-up.
        let sc = scenario(5);
        let spread = Placement::full(sc.services(), sc.nodes());
        let mut pile = Placement::empty(sc.services(), sc.nodes());
        for m in sc.requested_services() {
            pile.set(m, socl_net::NodeId(0), true);
        }
        let cfg = TestbedConfig::default();
        let res_spread = run_testbed(&sc, &spread, &cfg);
        let res_pile = run_testbed(&sc, &pile, &cfg);
        assert!(
            res_pile.mean > res_spread.mean,
            "pile {} should exceed spread {}",
            res_pile.mean,
            res_spread.mean
        );
    }

    #[test]
    fn percentiles_are_ordered() {
        let sc = scenario(7);
        let placement = SoclSolver::new().solve(&sc).placement;
        let res = run_testbed(&sc, &placement, &TestbedConfig::default());
        let p50 = res.latency_percentile(0.5);
        let p95 = res.latency_percentile(0.95);
        assert!(p50 > 0.0);
        assert!(p95 >= p50);
        assert!(res.max >= p95 - 1e-12);
        assert_eq!(res.median(), p50);
    }

    #[test]
    fn testbed_is_deterministic() {
        let sc = scenario(6);
        let placement = SoclSolver::new().solve(&sc).placement;
        let cfg = TestbedConfig::default();
        let a = run_testbed(&sc, &placement, &cfg);
        let b = run_testbed(&sc, &placement, &cfg);
        assert_eq!(a.per_request, b.per_request);
        assert_eq!(a.cold_starts, b.cold_starts);
    }
}

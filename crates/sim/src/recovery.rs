//! Crash-consistent checkpoint/restore and deterministic event-log replay.
//!
//! The online simulator is a deterministic fold over its own state, which
//! makes it crash-recoverable in the strongest sense: freeze the complete
//! live state at any slot boundary, kill the process, restore, and the
//! resumed run is **bit-identical** to the uninterrupted one — not merely
//! statistically equivalent. This module provides the three pieces:
//!
//! * [`Checkpoint`] — a versioned, serde-free binary image of everything
//!   [`OnlineSimulator`] accumulates at runtime: the slot clock, the
//!   scheduled-fault cursor, the billing accumulator, user locations and
//!   request chains, node/link liveness, both ChaCha12 RNG streams (main
//!   and mobility) pinned by `(seed, stream, word position)`, and the
//!   control plane's [`ScalerState`]. The APSP cache is deliberately *not*
//!   serialized: it is derived state, rebuilt from the substrate and
//!   re-masked to the saved alive-link set on restore (the incremental
//!   cache is proven bit-identical to a from-scratch rebuild). Integrity
//!   is a trailing CRC-32 over the whole image; decoding never panics.
//! * [`DecisionLog`] — an append-only write-ahead log of per-slot events
//!   (slot begin/end, scaler ticks, admission sheds, repairs, fault-cursor
//!   advances, checkpoint markers). Each record is framed
//!   `[len][crc][payload]`; [`DecisionLog::from_bytes`] truncates a torn
//!   or corrupted tail at the first bad frame and reports it — a partial
//!   record is never silently replayed.
//! * [`run_crash_recovery`] — the driver: runs a victim to a seeded
//!   kill-point (checkpointing every `checkpoint_every` slots), tears it
//!   down, restores from the last checkpoint plus the clean log prefix,
//!   replays the suffix, and stitches a full timeline that must equal the
//!   uninterrupted golden run slot for slot, bit for bit. After recovery
//!   the [`audit_invariants`] auditor checks conservation laws the crash
//!   must not have bent: population, billing, replica placement, fault-
//!   cursor partition, and cache-vs-rebuild equivalence.

use crate::online::{OnlineConfig, OnlineSimulator, SlotRecord};
use crate::policy::Policy;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use socl_autoscale::{ForecasterState, ScalerState, ServiceStateSnapshot};
use socl_model::{crc32, BinReader, BinWriter, CodecError, ServiceId, UserId, UserRequest};
use socl_net::time::Stopwatch;
use socl_net::NodeId;
use std::time::Duration;

/// Checkpoint format tag (`b"SCKP"` little-endian).
const CKPT_MAGIC: u32 = u32::from_le_bytes(*b"SCKP");
/// Checkpoint format version understood by this build.
// CKPT-SHAPE(v1): 5709c643363a0312
const CKPT_VERSION: u32 = 1;
/// Upper bound on any decoded sequence length — a corrupt length field
/// must never turn into a multi-gigabyte allocation.
const MAX_SEQ: usize = 1 << 24;

/// Frozen position of a `ChaCha12Rng`: `(seed, stream, word position)`
/// fully determine the generator's future output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngState {
    /// The 256-bit seed the generator was created from.
    pub seed: [u8; 32],
    /// Stream identifier (ChaCha nonce).
    pub stream: u64,
    /// Position in the keystream, in 32-bit words.
    pub word_pos: u128,
}

impl RngState {
    /// Capture the state of `rng`.
    pub fn of(rng: &ChaCha12Rng) -> Self {
        Self {
            seed: rng.get_seed(),
            stream: rng.get_stream(),
            word_pos: rng.get_word_pos(),
        }
    }

    /// Rebuild a generator at exactly this position.
    pub fn build(&self) -> ChaCha12Rng {
        let mut rng = ChaCha12Rng::from_seed(self.seed);
        rng.set_stream(self.stream);
        rng.set_word_pos(self.word_pos);
        rng
    }
}

/// A complete, self-validating image of the online simulator's live state
/// at a slot boundary. See the module docs for what is and is not included.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Slot the restored run will execute next.
    pub next_slot: u64,
    /// Scheduled-fault events already applied.
    pub fault_cursor: u64,
    /// Replica-slots billed so far (Σ end-of-slot warm replicas).
    pub billed_replica_slots: u64,
    /// Station of every user (`locations[h]`).
    pub locations: Vec<NodeId>,
    /// Every user's current request (chain, data volumes, tolerance).
    pub requests: Vec<UserRequest>,
    /// Per-node compute liveness.
    pub alive: Vec<bool>,
    /// Per-link liveness (degraded links are masked out).
    pub alive_links: Vec<bool>,
    /// The main simulation RNG (failures, churn, chain sampling).
    pub rng: RngState,
    /// The mobility model's RNG.
    pub mobility_rng: RngState,
    /// Control-plane state, when the run has one.
    pub scaler: Option<ScalerState>,
}

// LINT-CODEC: RngState
fn put_rng(w: &mut BinWriter, s: &RngState) {
    w.put_raw(&s.seed);
    w.put_u64(s.stream);
    w.put_u128(s.word_pos);
}

fn get_rng(r: &mut BinReader<'_>) -> Result<RngState, CodecError> {
    let seed: [u8; 32] = r
        .take(32)?
        .try_into()
        .map_err(|_| CodecError::Malformed("rng seed"))?;
    Ok(RngState {
        seed,
        stream: r.get_u64()?,
        word_pos: r.get_u128()?,
    })
}

// LINT-CODEC: UserRequest
fn put_request(w: &mut BinWriter, req: &UserRequest) {
    w.put_u32(req.id.0);
    w.put_u32(req.location.0);
    let chain: Vec<u32> = req.chain.iter().map(|m| m.0).collect();
    w.put_u32_slice(&chain);
    w.put_f64_slice(&req.edge_data);
    w.put_f64(req.r_in);
    w.put_f64(req.r_out);
    w.put_f64(req.d_max);
}

fn get_request(r: &mut BinReader<'_>) -> Result<UserRequest, CodecError> {
    let id = UserId(r.get_u32()?);
    let location = NodeId(r.get_u32()?);
    let chain: Vec<ServiceId> = r.get_u32_vec()?.into_iter().map(ServiceId).collect();
    let edge_data = r.get_f64_vec()?;
    if chain.is_empty() {
        return Err(CodecError::Malformed("empty request chain"));
    }
    if edge_data.len() + 1 != chain.len() {
        return Err(CodecError::Malformed("edge_data/chain length mismatch"));
    }
    Ok(UserRequest {
        id,
        location,
        chain,
        edge_data,
        r_in: r.get_f64()?,
        r_out: r.get_f64()?,
        d_max: r.get_f64()?,
    })
}

/// Serialize a full [`ScalerState`] (counts, caps, per-service windows,
/// forecaster, cooldowns) into `w`. Public so services layered above the
/// simulator — the socl-serve control plane — checkpoint their per-region
/// autoscalers through the exact codec this module's own [`Checkpoint`]
/// uses, instead of re-deriving the wire format.
// LINT-CODEC: ScalerState, ServiceStateSnapshot, ForecasterState
pub fn put_scaler_state(w: &mut BinWriter, s: &ScalerState) {
    w.put_usize(s.services);
    w.put_usize(s.nodes);
    w.put_u32_slice(&s.counts);
    w.put_u32_slice(&s.caps);
    w.put_usize(s.states.len());
    for st in &s.states {
        w.put_usize(st.samples.len());
        for &(t, v) in &st.samples {
            w.put_f64(t);
            w.put_f64(v);
        }
        w.put_usize(st.desires.len());
        for &(t, v) in &st.desires {
            w.put_f64(t);
            w.put_u32(v);
        }
        w.put_f64(st.forecaster.alpha);
        w.put_f64(st.forecaster.beta);
        w.put_f64(st.forecaster.level);
        w.put_f64(st.forecaster.trend);
        w.put_u64(st.forecaster.seen);
        w.put_f64(st.last_down);
        w.put_f64(st.panic_until);
    }
    w.put_u64(s.up_events);
    w.put_u64(s.down_events);
    w.put_f64(s.cold_start);
}

fn get_seq_len(r: &mut BinReader<'_>) -> Result<usize, CodecError> {
    let n = r.get_usize()?;
    if n > MAX_SEQ {
        return Err(CodecError::Malformed("sequence length over limit"));
    }
    Ok(n)
}

/// Decode a [`ScalerState`] written by [`put_scaler_state`].
///
/// # Errors
/// [`CodecError`] on truncated input or a sequence length over the
/// [`MAX_SEQ`] safety bound.
pub fn get_scaler_state(r: &mut BinReader<'_>) -> Result<ScalerState, CodecError> {
    let services = r.get_usize()?;
    let nodes = r.get_usize()?;
    let counts = r.get_u32_vec()?;
    let caps = r.get_u32_vec()?;
    let n_states = get_seq_len(r)?;
    let mut states = Vec::with_capacity(n_states);
    for _ in 0..n_states {
        let n_samples = get_seq_len(r)?;
        let mut samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            samples.push((r.get_f64()?, r.get_f64()?));
        }
        let n_desires = get_seq_len(r)?;
        let mut desires = Vec::with_capacity(n_desires);
        for _ in 0..n_desires {
            desires.push((r.get_f64()?, r.get_u32()?));
        }
        let forecaster = ForecasterState {
            alpha: r.get_f64()?,
            beta: r.get_f64()?,
            level: r.get_f64()?,
            trend: r.get_f64()?,
            seen: r.get_u64()?,
        };
        states.push(ServiceStateSnapshot {
            samples,
            desires,
            forecaster,
            last_down: r.get_f64()?,
            panic_until: r.get_f64()?,
        });
    }
    Ok(ScalerState {
        services,
        nodes,
        counts,
        caps,
        states,
        up_events: r.get_u64()?,
        down_events: r.get_u64()?,
        cold_start: r.get_f64()?,
    })
}

impl Checkpoint {
    /// Serialize to the versioned wire format: magic, version, payload,
    /// trailing CRC-32 over everything before it.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = BinWriter::new();
        w.put_u32(CKPT_MAGIC);
        w.put_u32(CKPT_VERSION);
        w.put_u64(self.next_slot);
        w.put_u64(self.fault_cursor);
        w.put_u64(self.billed_replica_slots);
        let locs: Vec<u32> = self.locations.iter().map(|k| k.0).collect();
        w.put_u32_slice(&locs);
        w.put_usize(self.requests.len());
        for req in &self.requests {
            put_request(&mut w, req);
        }
        w.put_bool_slice(&self.alive);
        w.put_bool_slice(&self.alive_links);
        put_rng(&mut w, &self.rng);
        put_rng(&mut w, &self.mobility_rng);
        match &self.scaler {
            None => w.put_u8(0),
            Some(s) => {
                w.put_u8(1);
                put_scaler_state(&mut w, s);
            }
        }
        let digest = crc32(w.as_bytes());
        w.put_u32(digest);
        w.into_bytes()
    }

    /// Decode and validate a checkpoint image.
    ///
    /// # Errors
    /// Any [`CodecError`]: truncation, bad magic/version, checksum
    /// mismatch, or a structurally impossible field. Never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() < 12 {
            return Err(CodecError::Truncated {
                needed: 12,
                have: bytes.len(),
            });
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(
            tail.try_into()
                .map_err(|_| CodecError::Malformed("crc tail"))?,
        );
        let computed = crc32(payload);
        if stored != computed {
            return Err(CodecError::BadChecksum { stored, computed });
        }
        let mut r = BinReader::new(payload);
        let magic = r.get_u32()?;
        if magic != CKPT_MAGIC {
            return Err(CodecError::BadMagic {
                found: magic,
                expected: CKPT_MAGIC,
            });
        }
        let version = r.get_u32()?;
        if version != CKPT_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let next_slot = r.get_u64()?;
        let fault_cursor = r.get_u64()?;
        let billed_replica_slots = r.get_u64()?;
        let locations: Vec<NodeId> = r.get_u32_vec()?.into_iter().map(NodeId).collect();
        let n_requests = get_seq_len(&mut r)?;
        let mut requests = Vec::with_capacity(n_requests);
        for _ in 0..n_requests {
            requests.push(get_request(&mut r)?);
        }
        let alive = r.get_bool_vec()?;
        let alive_links = r.get_bool_vec()?;
        let rng = get_rng(&mut r)?;
        let mobility_rng = get_rng(&mut r)?;
        let scaler = match r.get_u8()? {
            0 => None,
            1 => Some(get_scaler_state(&mut r)?),
            _ => return Err(CodecError::Malformed("scaler presence flag")),
        };
        if !r.is_done() {
            return Err(CodecError::Malformed("trailing bytes after checkpoint"));
        }
        Ok(Self {
            next_slot,
            fault_cursor,
            billed_replica_slots,
            locations,
            requests,
            alive,
            alive_links,
            rng,
            mobility_rng,
            scaler,
        })
    }
}

/// Why a checkpoint could not be applied to a simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The image does not fit this run's configuration (wrong user count,
    /// node count, link count, control-plane presence, …).
    Mismatch(String),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Mismatch(what) => write!(f, "checkpoint/config mismatch: {what}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl OnlineSimulator {
    /// Freeze the complete live state. Valid at any slot boundary — i.e.
    /// any time [`step`](Self::step) is not executing.
    #[must_use]
    pub fn snapshot(&self) -> Checkpoint {
        Checkpoint {
            next_slot: self.next_slot as u64,
            fault_cursor: self.fault_cursor as u64,
            billed_replica_slots: self.billed_replica_slots,
            locations: self.locations.clone(),
            requests: self.requests.clone(),
            alive: self.alive.clone(),
            alive_links: self.alive_links.clone(),
            rng: RngState::of(&self.rng),
            mobility_rng: {
                let (seed, stream, word_pos) = self.mobility.rng_state();
                RngState {
                    seed,
                    stream,
                    word_pos,
                }
            },
            scaler: self.scaler.as_ref().map(|s| s.state()),
        }
    }

    /// Apply a checkpoint taken from a simulator with the *same*
    /// configuration. Future [`step`](Self::step)s are bit-identical to
    /// the run the checkpoint was frozen from.
    ///
    /// The APSP cache is rebuilt from the substrate and re-masked to the
    /// saved alive-link set, not deserialized — derived state stays
    /// derived.
    ///
    /// # Errors
    /// [`RestoreError::Mismatch`] when any dimension of the image
    /// disagrees with this simulator's configuration; the simulator is
    /// left untouched in that case.
    pub fn restore(&mut self, ck: &Checkpoint) -> Result<(), RestoreError> {
        let users = self.cfg.users;
        if ck.locations.len() != users {
            return Err(RestoreError::Mismatch(format!(
                "{} locations for {} users",
                ck.locations.len(),
                users
            )));
        }
        if ck.requests.len() != users {
            return Err(RestoreError::Mismatch(format!(
                "{} requests for {} users",
                ck.requests.len(),
                users
            )));
        }
        if ck.alive.len() != self.cfg.nodes {
            return Err(RestoreError::Mismatch(format!(
                "{} alive flags for {} nodes",
                ck.alive.len(),
                self.cfg.nodes
            )));
        }
        if ck.alive_links.len() != self.base.net.link_count() {
            return Err(RestoreError::Mismatch(format!(
                "{} link flags for {} links",
                ck.alive_links.len(),
                self.base.net.link_count()
            )));
        }
        if ck.next_slot as usize > self.cfg.slots {
            return Err(RestoreError::Mismatch(format!(
                "next_slot {} past the {}-slot horizon",
                ck.next_slot, self.cfg.slots
            )));
        }
        if ck.fault_cursor as usize > self.cfg.faults.len() {
            return Err(RestoreError::Mismatch(format!(
                "fault cursor {} past the {}-event schedule",
                ck.fault_cursor,
                self.cfg.faults.len()
            )));
        }
        let nodes = self.cfg.nodes as u32;
        if ck.locations.iter().any(|k| k.0 >= nodes) {
            return Err(RestoreError::Mismatch("user located off-grid".into()));
        }
        let services = self.base.catalog.len() as u32;
        for req in &ck.requests {
            if req.chain.iter().any(|m| m.0 >= services) {
                return Err(RestoreError::Mismatch(
                    "request chain names an unknown service".into(),
                ));
            }
        }
        match (&mut self.scaler, &ck.scaler) {
            (None, None) => {}
            (Some(scaler), Some(state)) => {
                scaler
                    .restore_state(state)
                    .map_err(RestoreError::Mismatch)?;
            }
            (None, Some(_)) => {
                return Err(RestoreError::Mismatch(
                    "checkpoint has control-plane state but the run has no autoscaler".into(),
                ));
            }
            (Some(_), None) => {
                return Err(RestoreError::Mismatch(
                    "run has an autoscaler but the checkpoint has no control-plane state".into(),
                ));
            }
        }

        self.next_slot = ck.next_slot as usize;
        self.fault_cursor = ck.fault_cursor as usize;
        self.billed_replica_slots = ck.billed_replica_slots;
        self.locations = ck.locations.clone();
        self.requests = ck.requests.clone();
        self.alive = ck.alive.clone();
        self.alive_links = ck.alive_links.clone();
        self.rng = ck.rng.build();
        self.mobility.restore_rng(
            ck.mobility_rng.seed,
            ck.mobility_rng.stream,
            ck.mobility_rng.word_pos,
        );
        // Derived state: fresh cache over the substrate, masked to the
        // saved alive-link set (bit-identical to the uninterrupted run's
        // incrementally-maintained tables).
        self.apsp = socl_net::ApspCache::new(&self.base.net);
        let desired: Vec<f64> = self
            .base
            .net
            .links()
            .iter()
            .zip(&self.alive_links)
            .map(|(l, &up)| if up { l.rate() } else { 0.0 })
            .collect();
        self.apsp.sync_rates(&desired);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Slot metrics: the deterministic projection of a SlotRecord.
// ---------------------------------------------------------------------------

/// The deterministic subset of a [`SlotRecord`]: every field that must be
/// bit-identical between an uninterrupted run and a crash-recovered one.
/// Wall-clock durations (`solve_time`, `repair_time`) are excluded — they
/// measure this machine, not the simulated system. Floats are stored as
/// IEEE-754 bit patterns so equality is exact and `Eq` is derivable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotMetrics {
    /// Slot index.
    pub slot: u64,
    /// `SlotRecord::objective` as bits.
    pub objective_bits: u64,
    /// `SlotRecord::cost` as bits.
    pub cost_bits: u64,
    /// `SlotRecord::mean_latency` as bits.
    pub mean_latency_bits: u64,
    /// `SlotRecord::max_latency` as bits.
    pub max_latency_bits: u64,
    /// Requests that fell back to the cloud.
    pub fallbacks: u64,
    /// Nodes down during the slot.
    pub failed_nodes: u64,
    /// Mid-slot crashes.
    pub mid_slot_failures: u64,
    /// Instance churn from the repair pass.
    pub repair_churn: u64,
    /// Scale-up events.
    pub scale_ups: u64,
    /// Scale-down events.
    pub scale_downs: u64,
    /// Requests shed by admission control.
    pub shed_requests: u64,
    /// End-of-slot warm replicas.
    pub replicas: u32,
}

impl SlotMetrics {
    /// Project `record` onto its deterministic subset.
    #[must_use]
    pub fn of(record: &SlotRecord) -> Self {
        Self {
            slot: record.slot as u64,
            objective_bits: record.objective.to_bits(),
            cost_bits: record.cost.to_bits(),
            mean_latency_bits: record.mean_latency.to_bits(),
            max_latency_bits: record.max_latency.to_bits(),
            fallbacks: record.fallbacks as u64,
            failed_nodes: record.failed_nodes as u64,
            mid_slot_failures: record.mid_slot_failures as u64,
            repair_churn: record.repair_churn as u64,
            scale_ups: record.scale_ups as u64,
            scale_downs: record.scale_downs as u64,
            shed_requests: record.shed_requests as u64,
            replicas: record.replicas,
        }
    }

    /// The slot's weighted objective.
    #[must_use]
    pub fn objective(&self) -> f64 {
        f64::from_bits(self.objective_bits)
    }

    /// The slot's mean completion time (seconds).
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        f64::from_bits(self.mean_latency_bits)
    }

    fn encode(&self, w: &mut BinWriter) {
        w.put_u64(self.slot);
        w.put_u64(self.objective_bits);
        w.put_u64(self.cost_bits);
        w.put_u64(self.mean_latency_bits);
        w.put_u64(self.max_latency_bits);
        w.put_u64(self.fallbacks);
        w.put_u64(self.failed_nodes);
        w.put_u64(self.mid_slot_failures);
        w.put_u64(self.repair_churn);
        w.put_u64(self.scale_ups);
        w.put_u64(self.scale_downs);
        w.put_u64(self.shed_requests);
        w.put_u32(self.replicas);
    }

    fn decode(r: &mut BinReader<'_>) -> Result<Self, CodecError> {
        Ok(Self {
            slot: r.get_u64()?,
            objective_bits: r.get_u64()?,
            cost_bits: r.get_u64()?,
            mean_latency_bits: r.get_u64()?,
            max_latency_bits: r.get_u64()?,
            fallbacks: r.get_u64()?,
            failed_nodes: r.get_u64()?,
            mid_slot_failures: r.get_u64()?,
            repair_churn: r.get_u64()?,
            scale_ups: r.get_u64()?,
            scale_downs: r.get_u64()?,
            shed_requests: r.get_u64()?,
            replicas: r.get_u32()?,
        })
    }
}

// ---------------------------------------------------------------------------
// The write-ahead decision log.
// ---------------------------------------------------------------------------

/// One durably-logged event. The log is written *ahead* of the externally
/// visible effect: a crash between a record and its effect loses at most
/// work the replay re-derives deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogRecord {
    /// A slot is about to execute.
    SlotBegin {
        /// Slot index.
        slot: u64,
    },
    /// A checkpoint image of `bytes` bytes was taken at this boundary.
    CheckpointTaken {
        /// Slot the checkpoint will resume at.
        slot: u64,
        /// Serialized size.
        bytes: u64,
    },
    /// The scheduled-fault cursor after the slot applied its window.
    FaultCursor {
        /// Slot index.
        slot: u64,
        /// Events consumed so far.
        cursor: u64,
    },
    /// The control loop scaled this slot.
    ScalerTick {
        /// Slot index.
        slot: u64,
        /// Scale-up events.
        ups: u64,
        /// Scale-down events.
        downs: u64,
    },
    /// Admission control shed requests this slot.
    Shed {
        /// Slot index.
        slot: u64,
        /// Requests refused.
        count: u64,
    },
    /// A mid-slot crash triggered the repair path.
    Repair {
        /// Slot index.
        slot: u64,
        /// Instance churn of the repair pass.
        churn: u64,
    },
    /// A slot finished with these deterministic metrics — the replay
    /// oracle: a restored run re-executing this slot must reproduce them
    /// bit for bit.
    SlotEnd {
        /// Slot index.
        slot: u64,
        /// The slot's deterministic metrics.
        metrics: SlotMetrics,
    },
}

impl LogRecord {
    fn encode(&self, w: &mut BinWriter) {
        match self {
            LogRecord::SlotBegin { slot } => {
                w.put_u8(1);
                w.put_u64(*slot);
            }
            LogRecord::CheckpointTaken { slot, bytes } => {
                w.put_u8(2);
                w.put_u64(*slot);
                w.put_u64(*bytes);
            }
            LogRecord::FaultCursor { slot, cursor } => {
                w.put_u8(3);
                w.put_u64(*slot);
                w.put_u64(*cursor);
            }
            LogRecord::ScalerTick { slot, ups, downs } => {
                w.put_u8(4);
                w.put_u64(*slot);
                w.put_u64(*ups);
                w.put_u64(*downs);
            }
            LogRecord::Shed { slot, count } => {
                w.put_u8(5);
                w.put_u64(*slot);
                w.put_u64(*count);
            }
            LogRecord::Repair { slot, churn } => {
                w.put_u8(6);
                w.put_u64(*slot);
                w.put_u64(*churn);
            }
            LogRecord::SlotEnd { slot, metrics } => {
                w.put_u8(7);
                w.put_u64(*slot);
                metrics.encode(w);
            }
        }
    }

    fn decode(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = BinReader::new(payload);
        let rec = match r.get_u8()? {
            1 => LogRecord::SlotBegin { slot: r.get_u64()? },
            2 => LogRecord::CheckpointTaken {
                slot: r.get_u64()?,
                bytes: r.get_u64()?,
            },
            3 => LogRecord::FaultCursor {
                slot: r.get_u64()?,
                cursor: r.get_u64()?,
            },
            4 => LogRecord::ScalerTick {
                slot: r.get_u64()?,
                ups: r.get_u64()?,
                downs: r.get_u64()?,
            },
            5 => LogRecord::Shed {
                slot: r.get_u64()?,
                count: r.get_u64()?,
            },
            6 => LogRecord::Repair {
                slot: r.get_u64()?,
                churn: r.get_u64()?,
            },
            7 => LogRecord::SlotEnd {
                slot: r.get_u64()?,
                metrics: SlotMetrics::decode(&mut r)?,
            },
            _ => return Err(CodecError::Malformed("unknown log record tag")),
        };
        if !r.is_done() {
            return Err(CodecError::Malformed("trailing bytes in log record"));
        }
        Ok(rec)
    }
}

/// Why [`DecisionLog::from_bytes`] stopped before the end of the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornTailReason {
    /// The tail is shorter than its frame header or declared payload —
    /// the classic torn write.
    TruncatedFrame,
    /// A complete frame whose payload fails its CRC.
    ChecksumMismatch,
    /// A CRC-valid payload that does not decode to a record.
    MalformedRecord,
}

/// What the torn-tail scan found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailReport {
    /// Records recovered cleanly.
    pub clean_records: usize,
    /// Bytes discarded from the tail.
    pub truncated_bytes: usize,
    /// Why the scan stopped (`None`: the log was fully clean).
    pub reason: Option<TornTailReason>,
}

/// Append one `[u32 payload_len][u32 crc32(payload)][payload]` frame to a
/// write-ahead log buffer — the wire framing shared by [`DecisionLog`] and
/// every other WAL layered on this substrate (the socl-serve per-region
/// logs). Keeping the framing in one place means a torn tail means the
/// same thing to every log in the workspace.
pub fn frame_append(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Scan framed bytes front to back, validating each frame's length and
/// checksum and judging payload well-formedness with `decode_ok`. Returns
/// the byte length of the clean prefix and a [`TailReport`] describing
/// what (if anything) was cut and why — the torn-tail discipline: a bad
/// frame truncates, it is never replayed.
pub fn scan_frames(bytes: &[u8], decode_ok: &dyn Fn(&[u8]) -> bool) -> (usize, TailReport) {
    let mut clean_end = 0usize;
    let mut clean_records = 0usize;
    let mut reason = None;
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + 8) else {
            reason = Some(TornTailReason::TruncatedFrame);
            break;
        };
        let (len_b, crc_b) = header.split_at(4);
        let len = len_b.try_into().map(u32::from_le_bytes).unwrap_or(u32::MAX) as usize;
        let stored = crc_b.try_into().map(u32::from_le_bytes).unwrap_or(0);
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            reason = Some(TornTailReason::TruncatedFrame);
            break;
        };
        if crc32(payload) != stored {
            reason = Some(TornTailReason::ChecksumMismatch);
            break;
        }
        if !decode_ok(payload) {
            reason = Some(TornTailReason::MalformedRecord);
            break;
        }
        pos += 8 + len;
        clean_end = pos;
        clean_records += 1;
    }
    (
        clean_end,
        TailReport {
            clean_records,
            truncated_bytes: bytes.len() - clean_end,
            reason,
        },
    )
}

/// Split a fully clean framed buffer into its payload slices. Intended for
/// buffers already truncated by [`scan_frames`]; a malformed frame is a
/// hard [`CodecError`], not a tail to cut.
///
/// # Errors
/// [`CodecError`] on a truncated header/payload or a checksum mismatch.
pub fn frame_payloads(bytes: &[u8]) -> Result<Vec<&[u8]>, CodecError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let header = bytes
            .get(pos..pos + 8)
            .ok_or(CodecError::Malformed("log frame header"))?;
        let (len_b, crc_b) = header.split_at(4);
        let len = len_b
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| CodecError::Malformed("log frame length"))? as usize;
        let stored = crc_b
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| CodecError::Malformed("log frame crc"))?;
        let payload = bytes
            .get(pos + 8..pos + 8 + len)
            .ok_or(CodecError::Malformed("log frame payload"))?;
        let computed = crc32(payload);
        if computed != stored {
            return Err(CodecError::BadChecksum { stored, computed });
        }
        out.push(payload);
        pos += 8 + len;
    }
    Ok(out)
}

/// Append-only write-ahead log. Each record is framed
/// `[u32 payload_len][u32 crc32(payload)][payload]`, so a torn tail is
/// detected — and truncated, never replayed — at the first frame whose
/// length or checksum fails.
#[derive(Debug, Clone, Default)]
pub struct DecisionLog {
    buf: Vec<u8>,
}

impl DecisionLog {
    /// Empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Serialized size in bytes.
    #[must_use]
    pub fn len_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Append one framed record.
    pub fn append(&mut self, record: &LogRecord) {
        let mut w = BinWriter::new();
        record.encode(&mut w);
        frame_append(&mut self.buf, w.as_bytes());
    }

    /// The raw wire bytes (what a durable log file would contain).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume into the raw wire bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Rebuild from wire bytes, truncating a torn or corrupted tail at
    /// the first bad frame. The returned log contains only the clean
    /// prefix; the report says how much was cut and why.
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> (Self, TailReport) {
        let (clean_end, report) = scan_frames(bytes, &|payload| LogRecord::decode(payload).is_ok());
        let log = Self {
            buf: bytes.get(..clean_end).unwrap_or_default().to_vec(),
        };
        (log, report)
    }

    /// Decode every record in the (clean) log.
    ///
    /// # Errors
    /// [`CodecError`] if the buffer holds a bad frame — impossible for
    /// logs built by [`append`](Self::append) or returned from
    /// [`from_bytes`](Self::from_bytes).
    pub fn records(&self) -> Result<Vec<LogRecord>, CodecError> {
        frame_payloads(&self.buf)?
            .into_iter()
            .map(LogRecord::decode)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The invariant auditor.
// ---------------------------------------------------------------------------

/// Result of an invariant audit: human-readable violation descriptions,
/// empty when every invariant held.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// One entry per violated invariant.
    pub violations: Vec<String>,
}

impl AuditReport {
    /// True when no invariant was violated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Audit the conservation laws a crash recovery must not bend, against a
/// simulator that has finished (or paused at) a slot boundary and the
/// slot-metric timeline that produced it. `timeline` must cover slots
/// `0..sim.next_slot()` in order.
///
/// Checks: population conservation (user and request vectors intact and
/// on-grid), slot-clock/timeline consistency, billing conservation
/// (`billed_replica_slots` equals the timeline's replica sum), replica
/// conservation (control-plane totals match the last slot; no warm pool
/// on a dead node), fault-cursor partition (consumed events strictly
/// before the clock, pending ones at or after), and cache-vs-rebuild
/// equivalence (the incremental APSP tables are bit-identical to a
/// from-scratch serial rebuild of the masked substrate).
#[must_use]
pub fn audit_invariants(sim: &OnlineSimulator, timeline: &[SlotMetrics]) -> AuditReport {
    let mut v = Vec::new();
    let cfg = &sim.cfg;

    // -- population conservation ------------------------------------------
    if sim.locations.len() != cfg.users {
        v.push(format!(
            "population: {} locations for {} users",
            sim.locations.len(),
            cfg.users
        ));
    }
    if sim.requests.len() != cfg.users {
        v.push(format!(
            "population: {} requests for {} users",
            sim.requests.len(),
            cfg.users
        ));
    }
    for (h, loc) in sim.locations.iter().enumerate() {
        if loc.idx() >= cfg.nodes {
            v.push(format!("population: user {h} located off-grid at {loc}"));
        }
    }
    // No stranded in-flight requests: every request is structurally whole
    // (the slot-granular layer holds no partial transfers).
    let services = sim.base.catalog.len() as u32;
    for (h, req) in sim.requests.iter().enumerate() {
        if req.chain.is_empty() {
            v.push(format!("requests: user {h} has an empty chain"));
        } else if req.edge_data.len() + 1 != req.chain.len() {
            v.push(format!("requests: user {h} has a torn edge_data vector"));
        }
        if req.chain.iter().any(|m| m.0 >= services) {
            v.push(format!("requests: user {h} names an unknown service"));
        }
    }

    // -- slot clock vs timeline -------------------------------------------
    if timeline.len() != sim.next_slot {
        v.push(format!(
            "clock: timeline has {} slots but the clock is at {}",
            timeline.len(),
            sim.next_slot
        ));
    }
    for (i, m) in timeline.iter().enumerate() {
        if m.slot != i as u64 {
            v.push(format!("clock: timeline entry {i} carries slot {}", m.slot));
            break;
        }
    }

    // -- billing conservation ---------------------------------------------
    let billed: u64 = timeline
        .iter()
        .fold(0u64, |acc, m| acc.saturating_add(u64::from(m.replicas)));
    if billed != sim.billed_replica_slots {
        v.push(format!(
            "billing: accumulator says {} replica-slots, timeline sums to {billed}",
            sim.billed_replica_slots
        ));
    }

    // -- replica conservation ---------------------------------------------
    if let Some(scaler) = sim.scaler.as_ref() {
        let total = scaler.counts().total();
        if let Some(last) = timeline.last() {
            if total != last.replicas {
                v.push(format!(
                    "replicas: control plane holds {total}, last slot recorded {}",
                    last.replicas
                ));
            }
        }
        let last_mid_slot_crash = timeline.last().is_some_and(|m| m.mid_slot_failures > 0);
        for (m, k, c) in scaler.counts().iter_positive() {
            if k.idx() >= cfg.nodes {
                v.push(format!(
                    "replicas: {c} warm replicas of {m} off-grid at {k}"
                ));
            } else if !sim.alive.get(k.idx()).copied().unwrap_or(false) && !last_mid_slot_crash {
                // A mid-slot crash in the *final* slot may legitimately
                // leave re-homed state mid-transition; any earlier crash
                // must have been cleaned up by the next slot's merge.
                v.push(format!(
                    "replicas: {c} warm replicas of {m} on dead node {k}"
                ));
            }
        }
    }

    // -- user coverage ----------------------------------------------------
    if !sim.alive.iter().any(|&a| a) {
        v.push("coverage: no node is alive".into());
    }
    let last_mid_slot_crash = timeline.last().is_some_and(|m| m.mid_slot_failures > 0);
    if !last_mid_slot_crash {
        // Users detour off dead stations during each slot's advance; only a
        // crash *after* the final advance may leave one stranded.
        for (h, loc) in sim.locations.iter().enumerate() {
            if loc.idx() < cfg.nodes && !sim.alive.get(loc.idx()).copied().unwrap_or(false) {
                v.push(format!("coverage: user {h} stranded on dead station {loc}"));
            }
        }
    }

    // -- fault-cursor partition -------------------------------------------
    let boundary = sim.next_slot as f64 * cfg.slot_secs;
    if sim.fault_cursor > cfg.faults.len() {
        v.push(format!(
            "faults: cursor {} past the {}-event schedule",
            sim.fault_cursor,
            cfg.faults.len()
        ));
    } else {
        for (i, ev) in cfg.faults.events().iter().enumerate() {
            if i < sim.fault_cursor && ev.time >= boundary {
                v.push(format!(
                    "faults: consumed event {i} at t={} lies at/after the clock boundary {boundary}",
                    ev.time
                ));
            }
            if i >= sim.fault_cursor && ev.time < boundary {
                v.push(format!(
                    "faults: pending event {i} at t={} lies before the clock boundary {boundary}",
                    ev.time
                ));
            }
        }
    }

    // -- cache-vs-rebuild equivalence --------------------------------------
    let mut net = socl_net::EdgeNetwork::new();
    for k in sim.base.net.node_ids() {
        net.push_server(sim.base.net.server(k).clone());
    }
    for (idx, link) in sim.base.net.links().iter().enumerate() {
        if sim.alive_links.get(idx).copied().unwrap_or(false) {
            net.add_link(link.a, link.b, link.params);
        }
    }
    let rebuilt = socl_net::AllPairs::build_serial(&net);
    if !sim.apsp.all_pairs().identical(&rebuilt) {
        v.push("apsp: incremental cache diverged from a from-scratch rebuild".into());
    }

    AuditReport { violations: v }
}

// ---------------------------------------------------------------------------
// The crash-recovery driver.
// ---------------------------------------------------------------------------

/// How the log's tail is mangled between the kill and the recovery —
/// models a crash mid-write to durable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornTail {
    /// The log survived intact.
    Clean,
    /// Arbitrary garbage bytes follow the last complete record.
    Garbage,
    /// The crash tore a record mid-frame: a valid header plus a payload
    /// prefix.
    PartialRecord,
}

/// Parameters of one crash-recovery exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Checkpoint every this many slots (≥ 1; slot 0 is always
    /// checkpointed, so recovery is possible from any kill-point).
    pub checkpoint_every: usize,
    /// Kill the victim when its clock reaches this slot (clamped to the
    /// horizon; the kill lands at the slot *boundary*, i.e. after slot
    /// `kill_at_slot − 1` completed).
    pub kill_at_slot: usize,
    /// How the crash mangles the log tail.
    pub torn_tail: TornTail,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            checkpoint_every: 4,
            kill_at_slot: 6,
            torn_tail: TornTail::Clean,
        }
    }
}

/// What one kill-and-recover exercise produced.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Per-slot metrics of the uninterrupted golden run.
    pub golden: Vec<SlotMetrics>,
    /// The recovered timeline: durably-logged slots before the restore
    /// point, re-executed slots from there to the horizon.
    pub stitched: Vec<SlotMetrics>,
    /// Slot the last usable checkpoint resumed at.
    pub restored_from_slot: usize,
    /// Slots re-executed after the restore.
    pub replayed_slots: usize,
    /// Replayed slots whose metrics matched their logged `SlotEnd`
    /// record bit for bit.
    pub replay_log_matches: usize,
    /// Replayed slots that contradicted the log — must be 0.
    pub replay_log_mismatches: usize,
    /// Stitched slots that differ from the golden run — must be 0.
    pub metric_mismatches: usize,
    /// Serialized size of the checkpoint recovery restored from.
    pub checkpoint_bytes: usize,
    /// Log size at the kill (before tail mangling).
    pub log_bytes: usize,
    /// Bytes the torn-tail scan discarded.
    pub truncated_tail_bytes: usize,
    /// Wall-clock spent serializing checkpoints during the victim run.
    pub checkpoint_wall: Duration,
    /// Wall-clock of the recovery itself: log scan + checkpoint decode +
    /// restore + replay to the kill-point.
    pub recovery_wall: Duration,
    /// Invariant audit of the recovered simulator and stitched timeline.
    pub audit: AuditReport,
}

/// Why a recovery exercise could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// The checkpoint image failed to decode.
    Checkpoint(CodecError),
    /// The decoded checkpoint did not fit the run configuration.
    Restore(RestoreError),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Checkpoint(e) => write!(f, "checkpoint decode failed: {e}"),
            RecoveryError::Restore(e) => write!(f, "checkpoint restore failed: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<CodecError> for RecoveryError {
    fn from(e: CodecError) -> Self {
        RecoveryError::Checkpoint(e)
    }
}

impl From<RestoreError> for RecoveryError {
    fn from(e: RestoreError) -> Self {
        RecoveryError::Restore(e)
    }
}

fn no_measure(_: &socl_model::Scenario, _: &socl_model::Placement) -> Option<(f64, f64)> {
    None
}

/// Run the full kill-and-recover exercise for `cfg` under `policy`:
/// golden run, victim run torn down at the kill-point, restore from the
/// last checkpoint plus the clean log prefix, deterministic replay to the
/// horizon, then the invariant audit.
///
/// # Errors
/// [`RecoveryError`] when the checkpoint fails to decode or apply — both
/// indicate a bug (or a deliberately corrupted image), never a normal
/// crash, since torn *logs* are handled by truncation.
pub fn run_crash_recovery(
    cfg: &OnlineConfig,
    policy: &Policy,
    rcfg: &RecoveryConfig,
) -> Result<RecoveryOutcome, RecoveryError> {
    // -- golden: the uninterrupted reference ------------------------------
    let mut golden_sim = OnlineSimulator::new(cfg.clone());
    let mut golden = Vec::with_capacity(cfg.slots);
    while golden_sim.next_slot() < cfg.slots {
        let rec = golden_sim.step(policy, &mut no_measure);
        golden.push(SlotMetrics::of(&rec));
    }

    // -- victim: run to the kill-point, checkpointing and logging ---------
    let kill = rcfg.kill_at_slot.min(cfg.slots);
    let every = rcfg.checkpoint_every.max(1);
    let mut victim = OnlineSimulator::new(cfg.clone());
    let mut log = DecisionLog::new();
    let mut checkpoint_wall = Duration::ZERO;
    let t0 = Stopwatch::start();
    let mut ck_bytes = victim.snapshot().to_bytes();
    checkpoint_wall += t0.elapsed();
    let mut ck_slot = 0usize;
    log.append(&LogRecord::CheckpointTaken {
        slot: 0,
        bytes: ck_bytes.len() as u64,
    });
    while victim.next_slot() < kill {
        let s = victim.next_slot();
        if s > 0 && s % every == 0 {
            let t = Stopwatch::start();
            let bytes = victim.snapshot().to_bytes();
            checkpoint_wall += t.elapsed();
            log.append(&LogRecord::CheckpointTaken {
                slot: s as u64,
                bytes: bytes.len() as u64,
            });
            ck_bytes = bytes;
            ck_slot = s;
        }
        log.append(&LogRecord::SlotBegin { slot: s as u64 });
        let rec = victim.step(policy, &mut no_measure);
        let m = SlotMetrics::of(&rec);
        log.append(&LogRecord::FaultCursor {
            slot: s as u64,
            cursor: victim.fault_cursor as u64,
        });
        if m.scale_ups + m.scale_downs > 0 {
            log.append(&LogRecord::ScalerTick {
                slot: s as u64,
                ups: m.scale_ups,
                downs: m.scale_downs,
            });
        }
        if m.shed_requests > 0 {
            log.append(&LogRecord::Shed {
                slot: s as u64,
                count: m.shed_requests,
            });
        }
        if m.mid_slot_failures > 0 {
            log.append(&LogRecord::Repair {
                slot: s as u64,
                churn: m.repair_churn,
            });
        }
        log.append(&LogRecord::SlotEnd {
            slot: s as u64,
            metrics: m,
        });
    }
    // The crash: the victim's in-memory state is gone…
    drop(victim);
    let log_bytes = log.len_bytes();
    // …and the durable log may have a torn tail.
    let mut wire = log.into_bytes();
    match rcfg.torn_tail {
        TornTail::Clean => {}
        TornTail::Garbage => {
            wire.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF, 0x5A, 0xA5, 0x0F]);
        }
        TornTail::PartialRecord => {
            let mut torn = DecisionLog::new();
            torn.append(&LogRecord::SlotBegin { slot: u64::MAX });
            let frame = torn.into_bytes();
            let cut = frame.len().saturating_sub(3);
            wire.extend(frame.iter().take(cut));
        }
    }

    // -- recovery: truncate the tail, restore, replay ---------------------
    let t = Stopwatch::start();
    let (clean, tail) = DecisionLog::from_bytes(&wire);
    let ck = Checkpoint::from_bytes(&ck_bytes)?;
    let mut recovered = OnlineSimulator::new(cfg.clone());
    recovered.restore(&ck)?;
    let restored_from = recovered.next_slot();
    let records = clean.records()?;
    let logged_ends: Vec<(u64, SlotMetrics)> = records
        .iter()
        .filter_map(|r| match r {
            LogRecord::SlotEnd { slot, metrics } => Some((*slot, *metrics)),
            _ => None,
        })
        .collect();

    // Slots before the restore point come from the durable log.
    let mut stitched: Vec<SlotMetrics> = logged_ends
        .iter()
        .filter(|(s, _)| (*s as usize) < restored_from)
        .map(|(_, m)| *m)
        .collect();
    let mut driver_violations = Vec::new();
    if stitched.len() != restored_from {
        driver_violations.push(format!(
            "log: only {} of {restored_from} pre-checkpoint slots were durably logged",
            stitched.len()
        ));
    }

    // Replay from the checkpoint; the log is the oracle up to the kill.
    let mut replay_log_matches = 0usize;
    let mut replay_log_mismatches = 0usize;
    let mut replayed_slots = 0usize;
    while recovered.next_slot() < cfg.slots {
        let s = recovered.next_slot();
        let rec = recovered.step(policy, &mut no_measure);
        let m = SlotMetrics::of(&rec);
        if s < kill {
            replayed_slots += 1;
        }
        if let Some((_, logged)) = logged_ends.iter().find(|(ls, _)| *ls as usize == s) {
            if *logged == m {
                replay_log_matches += 1;
            } else {
                replay_log_mismatches += 1;
            }
        }
        stitched.push(m);
    }
    let recovery_wall = t.elapsed();

    let metric_mismatches = golden.iter().zip(&stitched).filter(|(g, r)| g != r).count()
        + golden.len().abs_diff(stitched.len());

    let mut audit = audit_invariants(&recovered, &stitched);
    audit.violations.splice(0..0, driver_violations);
    // The checkpoint-vs-run consistency the ISSUE calls "coverage": the
    // restore point must sit on the checkpoint cadence and never after
    // the kill.
    if restored_from != ck_slot || restored_from > kill {
        audit.violations.push(format!(
            "driver: restored from slot {restored_from}, expected checkpoint slot {ck_slot} ≤ kill {kill}"
        ));
    }

    Ok(RecoveryOutcome {
        golden,
        stitched,
        restored_from_slot: restored_from,
        replayed_slots,
        replay_log_matches,
        replay_log_mismatches,
        metric_mismatches,
        checkpoint_bytes: ck_bytes.len(),
        log_bytes,
        truncated_tail_bytes: tail.truncated_bytes,
        checkpoint_wall,
        recovery_wall,
        audit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultEvent, FaultKind, FaultSchedule};
    use socl_core::SoclConfig;

    fn small_cfg(seed: u64) -> OnlineConfig {
        OnlineConfig {
            slots: 8,
            users: 18,
            nodes: 8,
            fail_prob: 0.3,
            recover_prob: 0.4,
            seed,
            ..OnlineConfig::default()
        }
    }

    fn scaled_cfg(seed: u64) -> OnlineConfig {
        OnlineConfig {
            autoscale: Some(socl_autoscale::AutoscaleConfig {
                min_replicas: 1,
                stable_window: 8.0,
                panic_window: 2.0,
                scale_interval: 1.0,
                down_cooldown: 2.0,
                keep_alive: socl_autoscale::KeepAlivePolicy::Fixed(2.0),
                ..socl_autoscale::AutoscaleConfig::default()
            }),
            mid_slot_fail_prob: 0.4,
            repair: true,
            ..small_cfg(seed)
        }
    }

    fn policy() -> Policy {
        Policy::Socl(SoclConfig::default())
    }

    fn run_metrics(sim: &mut OnlineSimulator, policy: &Policy) -> Vec<SlotMetrics> {
        let mut out = Vec::new();
        while sim.next_slot() < sim.cfg.slots {
            let r = sim.step(policy, &mut no_measure);
            out.push(SlotMetrics::of(&r));
        }
        out
    }

    #[test]
    fn checkpoint_roundtrips_through_bytes_bit_exactly() {
        let mut sim = OnlineSimulator::new(scaled_cfg(11));
        let p = policy();
        for _ in 0..3 {
            sim.step(&p, &mut no_measure);
        }
        let ck = sim.snapshot();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("clean image must decode");
        assert_eq!(ck, back);
    }

    #[test]
    fn restore_resumes_bit_identically_mid_run() {
        let p = policy();
        for cfg in [small_cfg(5), scaled_cfg(5)] {
            // Golden: uninterrupted.
            let mut golden_sim = OnlineSimulator::new(cfg.clone());
            let golden = run_metrics(&mut golden_sim, &p);
            // Victim: stop after 3 slots, freeze, thaw into a *fresh* sim.
            let mut victim = OnlineSimulator::new(cfg.clone());
            for _ in 0..3 {
                victim.step(&p, &mut no_measure);
            }
            let ck = Checkpoint::from_bytes(&victim.snapshot().to_bytes())
                .expect("checkpoint must decode");
            drop(victim);
            let mut thawed = OnlineSimulator::new(cfg.clone());
            thawed.restore(&ck).expect("restore must apply");
            assert_eq!(thawed.next_slot(), 3);
            let suffix = run_metrics(&mut thawed, &p);
            assert_eq!(
                &golden[3..],
                &suffix[..],
                "restored run diverged from golden"
            );
        }
    }

    #[test]
    fn snapshot_restore_is_observationally_identity_in_place() {
        let p = policy();
        let cfg = scaled_cfg(19);
        let mut a = OnlineSimulator::new(cfg.clone());
        let mut b = OnlineSimulator::new(cfg);
        for _ in 0..4 {
            a.step(&p, &mut no_measure);
            b.step(&p, &mut no_measure);
        }
        // Freeze/thaw `b` in place; `a` is untouched.
        let ck = b.snapshot();
        b.restore(&ck).expect("self-restore must apply");
        assert_eq!(run_metrics(&mut a, &p), run_metrics(&mut b, &p));
    }

    #[test]
    fn corrupted_checkpoints_error_and_never_panic() {
        let mut sim = OnlineSimulator::new(scaled_cfg(23));
        let p = policy();
        sim.step(&p, &mut no_measure);
        let bytes = sim.snapshot().to_bytes();
        // Truncation at every prefix length.
        for cut in 0..bytes.len().min(64) {
            assert!(Checkpoint::from_bytes(&bytes[..cut]).is_err());
        }
        // Single-byte corruption at a sample of positions: the trailing
        // CRC catches every one of them.
        for pos in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(
                Checkpoint::from_bytes(&bad).is_err(),
                "flip at {pos} went undetected"
            );
        }
    }

    #[test]
    fn restore_rejects_a_checkpoint_from_another_shape() {
        let p = policy();
        let mut donor = OnlineSimulator::new(small_cfg(3));
        donor.step(&p, &mut no_measure);
        let ck = donor.snapshot();
        // Different user count.
        let mut other = OnlineSimulator::new(OnlineConfig {
            users: 5,
            ..small_cfg(3)
        });
        assert!(other.restore(&ck).is_err());
        // Control-plane presence mismatch.
        let mut scaled = OnlineSimulator::new(scaled_cfg(3));
        assert!(scaled.restore(&ck).is_err());
    }

    #[test]
    fn decision_log_roundtrips_and_truncates_torn_tails() {
        let mut log = DecisionLog::new();
        let metrics = SlotMetrics {
            slot: 2,
            objective_bits: 1.5f64.to_bits(),
            cost_bits: 2.5f64.to_bits(),
            mean_latency_bits: 0.25f64.to_bits(),
            max_latency_bits: 0.5f64.to_bits(),
            fallbacks: 1,
            failed_nodes: 2,
            mid_slot_failures: 0,
            repair_churn: 0,
            scale_ups: 3,
            scale_downs: 1,
            shed_requests: 4,
            replicas: 17,
        };
        let records = vec![
            LogRecord::CheckpointTaken { slot: 0, bytes: 99 },
            LogRecord::SlotBegin { slot: 2 },
            LogRecord::FaultCursor { slot: 2, cursor: 1 },
            LogRecord::ScalerTick {
                slot: 2,
                ups: 3,
                downs: 1,
            },
            LogRecord::Shed { slot: 2, count: 4 },
            LogRecord::Repair { slot: 2, churn: 6 },
            LogRecord::SlotEnd { slot: 2, metrics },
        ];
        for r in &records {
            log.append(r);
        }
        assert_eq!(log.records().expect("clean log"), records);

        // Torn tail: garbage after the last frame.
        let mut wire = log.as_bytes().to_vec();
        wire.extend_from_slice(&[1, 2, 3]);
        let (clean, tail) = DecisionLog::from_bytes(&wire);
        assert_eq!(clean.records().expect("clean prefix"), records);
        assert_eq!(tail.clean_records, records.len());
        assert_eq!(tail.truncated_bytes, 3);
        assert_eq!(tail.reason, Some(TornTailReason::TruncatedFrame));

        // Torn tail: a frame whose payload was corrupted in place.
        let mut wire = log.as_bytes().to_vec();
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        let (clean, tail) = DecisionLog::from_bytes(&wire);
        assert_eq!(
            clean.records().expect("clean prefix").len(),
            records.len() - 1
        );
        assert_eq!(tail.reason, Some(TornTailReason::ChecksumMismatch));
    }

    #[test]
    fn kill_and_recover_matches_golden_at_every_kill_point() {
        let p = policy();
        let cfg = small_cfg(7);
        for kill in 0..=cfg.slots {
            let out = run_crash_recovery(
                &cfg,
                &p,
                &RecoveryConfig {
                    checkpoint_every: 3,
                    kill_at_slot: kill,
                    torn_tail: TornTail::Clean,
                },
            )
            .expect("recovery must complete");
            assert_eq!(
                out.metric_mismatches, 0,
                "kill at {kill}: stitched timeline diverged from golden"
            );
            assert_eq!(
                out.replay_log_mismatches, 0,
                "kill at {kill}: replay contradicted the log"
            );
            assert!(
                out.audit.is_clean(),
                "kill at {kill}: {:?}",
                out.audit.violations
            );
            assert_eq!(out.golden.len(), cfg.slots);
            assert_eq!(out.stitched.len(), cfg.slots);
        }
    }

    #[test]
    fn kill_and_recover_survives_torn_tails_and_control_plane_churn() {
        let p = policy();
        let cfg = scaled_cfg(13);
        for torn in [TornTail::Clean, TornTail::Garbage, TornTail::PartialRecord] {
            let out = run_crash_recovery(
                &cfg,
                &p,
                &RecoveryConfig {
                    checkpoint_every: 2,
                    kill_at_slot: 5,
                    torn_tail: torn,
                },
            )
            .expect("recovery must complete");
            assert_eq!(out.metric_mismatches, 0, "{torn:?}: diverged from golden");
            assert_eq!(out.replay_log_mismatches, 0, "{torn:?}: contradicted log");
            assert!(out.audit.is_clean(), "{torn:?}: {:?}", out.audit.violations);
            if torn != TornTail::Clean {
                assert!(
                    out.truncated_tail_bytes > 0,
                    "{torn:?}: torn tail was not detected"
                );
            }
        }
    }

    #[test]
    fn recovery_works_under_a_scheduled_fault_storm() {
        let p = policy();
        let schedule = FaultSchedule::from_events(vec![
            FaultEvent {
                time: 0.0,
                kind: FaultKind::NodeCrash(NodeId(1)),
            },
            FaultEvent {
                time: 650.0,
                kind: FaultKind::NodeRecover(NodeId(1)),
            },
            FaultEvent {
                time: 900.0,
                kind: FaultKind::LinkDegrade {
                    link: 0,
                    factor: 4.0,
                },
            },
            FaultEvent {
                time: 1500.0,
                kind: FaultKind::LinkRestore { link: 0 },
            },
        ]);
        let cfg = OnlineConfig {
            faults: schedule,
            // The schedule is the only fault source: random churn could
            // revive node 1 before a metrics snapshot observes the outage.
            fail_prob: 0.0,
            recover_prob: 0.0,
            ..small_cfg(29)
        };
        // Kill inside the outage window: the restored run must resume
        // mid-schedule without replaying or skipping events.
        let out = run_crash_recovery(
            &cfg,
            &p,
            &RecoveryConfig {
                checkpoint_every: 2,
                kill_at_slot: 3,
                torn_tail: TornTail::Garbage,
            },
        )
        .expect("recovery must complete");
        assert_eq!(out.metric_mismatches, 0);
        assert!(out.audit.is_clean(), "{:?}", out.audit.violations);
        assert!(
            out.golden.iter().any(|m| m.failed_nodes > 0),
            "the schedule never took a node down"
        );
    }

    #[test]
    fn auditor_flags_a_cooked_timeline() {
        let p = policy();
        let mut sim = OnlineSimulator::new(small_cfg(17));
        let mut timeline = run_metrics(&mut sim, &p);
        assert!(audit_invariants(&sim, &timeline).is_clean());
        // Cook the books: claim a replica that was never billed.
        if let Some(last) = timeline.last_mut() {
            last.replicas += 1;
        }
        let report = audit_invariants(&sim, &timeline);
        assert!(
            report.violations.iter().any(|v| v.starts_with("billing")),
            "billing fraud went undetected: {:?}",
            report.violations
        );
    }
}

//! The time-slotted online simulator.
//!
//! SoCL "processes decisions in a time-slotted manner, where at each time
//! slot it adapts to the observed system state and current user demand".
//! The simulator realizes exactly that loop:
//!
//! 1. users move ([`MobilityModel`]), some re-draw their service chain,
//! 2. the policy re-provisions one-shot on the observed state,
//! 3. optionally a node crashes *mid-slot* — after the policy committed its
//!    placement — stranding the instances it hosted; with `repair` on, a
//!    failure-triggered [`socl_core::repair_placement`] pass re-provisions
//!    only the affected services (repair latency and churn are recorded),
//! 4. the slot is scored with exact routing (objective, mean/max latency),
//! 5. optionally, a node fails or recovers between slots (failure
//!    injection).
//!
//! Between-slot failure injection removes a node's instances and detours its
//! users to the nearest alive station, exercising the re-provisioning and
//! roll-back machinery under churn; mid-slot crashes exercise the *repair*
//! path, where a full re-solve is not an option.

use crate::faults::{FaultKind, FaultSchedule};
use crate::mobility::MobilityModel;
use crate::policy::Policy;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use socl_autoscale::{AutoscaleConfig, Autoscaler};
use socl_model::{
    evaluate, DependencyDataset, EshopDataset, ReplicaCounts, Scenario, ScenarioConfig, UserRequest,
};
use socl_net::time::Stopwatch;
use socl_net::NodeId;
use std::time::Duration;

/// Cold-start penalty (seconds) assumed by the online layer's keep-alive
/// economics — matches the testbed emulator's default `cold_start`.
const ONLINE_COLD_START: f64 = 0.5;

/// Online simulation parameters.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Number of slots (the paper's 4-hour trace at 5-minute slots = 48).
    pub slots: usize,
    /// Users in the system.
    pub users: usize,
    /// Edge servers.
    pub nodes: usize,
    /// Probability a user re-draws its chain each slot
    /// ("stochastic service dependencies").
    pub rechain_prob: f64,
    /// Mobility parameters.
    pub move_prob: f64,
    /// Base scenario knobs (budget, λ, ranges).
    pub scenario: ScenarioConfig,
    /// Per-slot probability that a random alive node fails (0 disables).
    pub fail_prob: f64,
    /// Per-slot probability that a failed node recovers.
    pub recover_prob: f64,
    /// Per-slot probability that a random alive link fails (0 disables).
    /// Only links whose removal keeps the network connected are eligible —
    /// the simulator models degradation, not partitions.
    pub link_fail_prob: f64,
    /// Per-slot probability that a failed link recovers.
    pub link_recover_prob: f64,
    /// Use the user-preference model (the paper's future-work feature):
    /// chain churn re-draws follow each user's stable service affinities,
    /// so successive requests of one user stay self-similar.
    pub user_preferences: bool,
    /// Per-slot probability that an alive node crashes *mid-slot*, after
    /// the policy has committed its placement (0 disables). The victim is
    /// the alive node hosting the most instances — the worst-case crash —
    /// and stays down going into following slots until it recovers.
    pub mid_slot_fail_prob: f64,
    /// Failure-triggered repair: when a mid-slot crash strands instances,
    /// re-provision only the affected services instead of serving the slot
    /// broken. Repair latency and churn are recorded per slot.
    pub repair: bool,
    /// Serverless control plane: when set, an [`Autoscaler`] owns per-cell
    /// warm-replica counts across slots. Each slot it (a) merges still-warm
    /// cells back into the policy's placement (tearing down a warm pool is
    /// the cost keep-alive paid to avoid), (b) sheds requests per the
    /// admission policy, and (c) runs one control-loop step on the observed
    /// per-service concurrency. The scaler clock advances by
    /// `scale_interval` per slot, so its windows span multiple slots. With
    /// `repair` on, mid-slot crashes go through
    /// [`socl_core::repair_with_replicas`] so stranded pools are re-homed
    /// rather than reset.
    pub autoscale: Option<AutoscaleConfig>,
    /// Deterministic scheduled faults, applied at the boundary of the slot
    /// containing each event's timestamp (in addition to — and before —
    /// the probabilistic injection above). Node crashes and recoveries
    /// toggle the alive set, link degradations mask the link (bridge-
    /// guarded, like probabilistic link failure), instance kills reap one
    /// warm replica from the control plane, and request losses are a
    /// testbed-layer concern ignored here. An empty schedule (the default)
    /// leaves every run bit-identical to configs that predate this field.
    pub faults: FaultSchedule,
    /// Simulated seconds per slot, mapping `faults` timestamps onto slots
    /// (paper: 5-minute slots).
    pub slot_secs: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            slots: 48,
            users: 50,
            nodes: 16,
            rechain_prob: 0.3,
            move_prob: 0.4,
            scenario: ScenarioConfig::default(),
            fail_prob: 0.0,
            recover_prob: 0.5,
            link_fail_prob: 0.0,
            link_recover_prob: 0.5,
            user_preferences: false,
            mid_slot_fail_prob: 0.0,
            repair: false,
            autoscale: None,
            faults: FaultSchedule::empty(),
            slot_secs: 300.0,
            seed: 0,
        }
    }
}

/// Per-slot measurement record.
#[derive(Debug, Clone)]
pub struct SlotRecord {
    pub slot: usize,
    /// Weighted objective of the slot's placement.
    pub objective: f64,
    /// Deployment cost.
    pub cost: f64,
    /// Mean completion time across requests (seconds).
    pub mean_latency: f64,
    /// Maximum completion time (seconds).
    pub max_latency: f64,
    /// Requests that fell back to the cloud.
    pub fallbacks: usize,
    /// Policy solve time for the slot.
    pub solve_time: Duration,
    /// Nodes down during the slot.
    pub failed_nodes: usize,
    /// Nodes that crashed mid-slot (after the placement was committed).
    pub mid_slot_failures: usize,
    /// Failure-triggered repair latency (zero when no repair ran).
    pub repair_time: Duration,
    /// Instance churn caused by the repair pass (prunes + adds).
    pub repair_churn: usize,
    /// Service-level scale-up events this slot (0 without a control plane).
    pub scale_ups: usize,
    /// Service-level scale-down events this slot.
    pub scale_downs: usize,
    /// Requests refused by admission control this slot.
    pub shed_requests: usize,
    /// Total warm replicas across all cells at the end of the slot
    /// (0 without a control plane).
    pub replicas: u32,
}

/// Error from control-plane accessors on a run configured without an
/// autoscaler (`OnlineConfig::autoscale` is `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlPlaneDisabled;

impl std::fmt::Display for ControlPlaneDisabled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("control plane not configured: OnlineConfig::autoscale is None")
    }
}

impl std::error::Error for ControlPlaneDisabled {}

/// The simulator: owns the evolving user state.
///
/// Fields are `pub(crate)` so the [`crate::recovery`] module can freeze and
/// restore the complete live state without an ever-growing accessor surface.
pub struct OnlineSimulator {
    pub(crate) cfg: OnlineConfig,
    pub(crate) dataset: DependencyDataset,
    pub(crate) base: Scenario,
    pub(crate) locations: Vec<NodeId>,
    pub(crate) requests: Vec<UserRequest>,
    pub(crate) mobility: MobilityModel,
    pub(crate) rng: ChaCha12Rng,
    pub(crate) alive: Vec<bool>,
    pub(crate) alive_links: Vec<bool>,
    pub(crate) preferences: Option<socl_model::PreferenceModel>,
    /// Incrementally-maintained APSP over the substrate with dead links
    /// masked out; only trees crossing a flipped link are recomputed when
    /// the alive-link set changes between slots.
    pub(crate) apsp: socl_net::ApspCache,
    /// The serverless control plane, when configured. Owns the warm-replica
    /// counts that persist across slots.
    pub(crate) scaler: Option<Autoscaler>,
    /// Index of the next slot [`step`](Self::step) will run — the slot
    /// clock, and part of every checkpoint.
    pub(crate) next_slot: usize,
    /// Cursor into `cfg.faults`: events before it have been applied.
    pub(crate) fault_cursor: usize,
    /// Cumulative replica-slots billed so far (Σ end-of-slot warm replicas)
    /// — the keep-alive economics bill, audited for conservation after
    /// every crash recovery.
    pub(crate) billed_replica_slots: u64,
    /// Reusable DFS state for bridge probes — transient scratch, never
    /// checkpointed (rule `A1-hot-alloc`).
    pub(crate) conn_scratch: socl_net::ConnScratch,
    /// Reusable chain-sampling buffers for the churn loop — transient
    /// scratch, never checkpointed (rule `A1-hot-alloc`).
    pub(crate) chain_scratch: socl_model::ChainScratch,
}

impl OnlineSimulator {
    /// Build the simulator (topology and catalog are fixed across slots).
    pub fn new(cfg: OnlineConfig) -> Self {
        let dataset = EshopDataset::build();
        let mut scenario_cfg = cfg.scenario.clone();
        scenario_cfg.nodes = cfg.nodes;
        scenario_cfg.users = cfg.users;
        let base = scenario_cfg.build_with_dataset(&dataset, cfg.seed);
        let locations = base.requests.iter().map(|r| r.location).collect();
        let requests = base.requests.clone();
        let mobility = MobilityModel::new(cfg.move_prob, 0.7, cfg.seed ^ 0xA5A5);
        // ChaCha12 is exactly what rand 0.8's `StdRng` wraps, so seeded
        // streams are unchanged — but its counter is observable, which is
        // what makes the RNG checkpointable (see `crate::recovery`).
        let rng = ChaCha12Rng::seed_from_u64(cfg.seed ^ 0x5A5A_5A5A);
        let alive = vec![true; cfg.nodes];
        let alive_links = vec![true; base.net.link_count()];
        let preferences = cfg
            .user_preferences
            .then(|| socl_model::PreferenceModel::sample(cfg.users, base.catalog.len(), cfg.seed));
        let apsp = socl_net::ApspCache::new(&base.net);
        let scaler = cfg
            .autoscale
            .clone()
            .map(|ac| Autoscaler::new(ac, ONLINE_COLD_START, base.catalog.len(), cfg.nodes));
        Self {
            cfg,
            dataset,
            base,
            locations,
            requests,
            mobility,
            rng,
            alive,
            alive_links,
            preferences,
            apsp,
            scaler,
            next_slot: 0,
            fault_cursor: 0,
            billed_replica_slots: 0,
            conn_scratch: socl_net::ConnScratch::new(),
            chain_scratch: socl_model::ChainScratch::new(),
        }
    }

    /// The control plane's warm-replica counts (None without autoscaling).
    pub fn replica_counts(&self) -> Option<&ReplicaCounts> {
        self.scaler.as_ref().map(|s| s.counts())
    }

    /// The control plane's warm-replica counts, as a structured error when
    /// the run has no control plane — for callers that *require* one and
    /// previously had to panic on the `None`.
    ///
    /// # Errors
    /// [`ControlPlaneDisabled`] when `OnlineConfig::autoscale` is `None`.
    pub fn replica_counts_checked(&self) -> Result<&ReplicaCounts, ControlPlaneDisabled> {
        self.replica_counts().ok_or(ControlPlaneDisabled)
    }

    /// Index of the next slot [`step`](Self::step) will execute.
    pub fn next_slot(&self) -> usize {
        self.next_slot
    }

    /// Cumulative end-of-slot warm-replica totals billed so far.
    pub fn billed_replica_slots(&self) -> u64 {
        self.billed_replica_slots
    }

    /// Incremental APSP cache statistics (rows recomputed vs reused).
    pub fn apsp_stats(&self) -> socl_net::CacheStats {
        self.apsp.stats()
    }

    /// True when removing every currently-dead link *plus* `extra` keeps the
    /// substrate connected. Probes the masked substrate in place — no
    /// subgraph is materialized, and the DFS buffers are recycled across
    /// calls (rule `A1-hot-alloc`).
    fn connected_without(&mut self, extra: usize) -> bool {
        self.base
            .net
            .is_connected_masked(&self.alive_links, extra, &mut self.conn_scratch)
    }

    /// The fixed substrate scenario (topology, catalog, knobs).
    pub fn base(&self) -> &Scenario {
        &self.base
    }

    /// Apply every scheduled fault whose timestamp falls inside the slot
    /// about to run (`[next_slot·slot_secs, (next_slot+1)·slot_secs)`).
    /// Events are consumed through `fault_cursor`, which is checkpointed —
    /// a restored run resumes mid-schedule without replaying or skipping
    /// events. Draws no randomness, so probabilistic injection streams are
    /// untouched by the schedule's presence.
    fn apply_scheduled_faults(&mut self) {
        let window_end = (self.next_slot as f64 + 1.0) * self.cfg.slot_secs;
        while self.fault_cursor < self.cfg.faults.len() {
            let ev = match self.cfg.faults.events().get(self.fault_cursor) {
                Some(ev) if ev.time < window_end => *ev,
                _ => break,
            };
            self.fault_cursor += 1;
            match ev.kind {
                FaultKind::NodeCrash(k) => {
                    let alive_count = self.alive.iter().filter(|&&a| a).count();
                    if let Some(a) = self.alive.get_mut(k.idx()) {
                        // Never take the last node down — same guard as
                        // probabilistic injection.
                        if alive_count > 1 {
                            *a = false;
                        }
                    }
                }
                FaultKind::NodeRecover(k) => {
                    if let Some(a) = self.alive.get_mut(k.idx()) {
                        *a = true;
                    }
                }
                FaultKind::LinkDegrade { link, .. } => {
                    // The placement layer has no notion of partial
                    // bandwidth; a degraded link is masked outright,
                    // bridge-guarded so the substrate never partitions.
                    if self.alive_links.get(link).copied() == Some(true)
                        && self.connected_without(link)
                    {
                        if let Some(l) = self.alive_links.get_mut(link) {
                            *l = false;
                        }
                    }
                }
                FaultKind::LinkRestore { link } => {
                    if let Some(l) = self.alive_links.get_mut(link) {
                        *l = true;
                    }
                }
                FaultKind::InstanceKill { service, node } => {
                    // Reap one warm replica; the control plane re-warms it
                    // on a later tick if demand still wants it.
                    if let Some(scaler) = self.scaler.as_mut() {
                        let cur = scaler.counts().get(service, node);
                        scaler.confirm(service, node, cur.saturating_sub(1));
                    }
                }
                FaultKind::RequestLoss { .. } => {
                    // In-flight transfer loss is a testbed-emulator concern;
                    // the slot-granular placement layer has no transfers.
                }
            }
        }
    }

    /// Advance user state by one slot and return the slot's scenario.
    fn advance(&mut self) -> Scenario {
        // Scheduled faults land first: they are part of the configuration,
        // not the random environment.
        self.apply_scheduled_faults();
        // Failure injection.
        if self.cfg.fail_prob > 0.0 {
            let alive_count = self.alive.iter().filter(|&&a| a).count();
            if alive_count > 1 && self.rng.gen::<f64>() < self.cfg.fail_prob {
                let idx = loop {
                    let i = self.rng.gen_range(0..self.cfg.nodes);
                    if self.alive[i] {
                        break i;
                    }
                };
                self.alive[idx] = false;
            }
        }
        // Recovery also covers nodes crashed mid-slot by `run_measured`.
        if self.cfg.fail_prob > 0.0 || self.cfg.mid_slot_fail_prob > 0.0 {
            for i in 0..self.cfg.nodes {
                if !self.alive[i] && self.rng.gen::<f64>() < self.cfg.recover_prob {
                    self.alive[i] = true;
                }
            }
        }

        // Link failure injection (degradation only — never a partition).
        if self.cfg.link_fail_prob > 0.0 {
            if self.rng.gen::<f64>() < self.cfg.link_fail_prob {
                let n_links = self.alive_links.len();
                if n_links > 0 {
                    // Try a few random candidates; skip bridges.
                    for _ in 0..8 {
                        let idx = self.rng.gen_range(0..n_links);
                        if self.alive_links[idx] && self.connected_without(idx) {
                            self.alive_links[idx] = false;
                            break;
                        }
                    }
                }
            }
            for idx in 0..self.alive_links.len() {
                if !self.alive_links[idx] && self.rng.gen::<f64>() < self.cfg.link_recover_prob {
                    self.alive_links[idx] = true;
                }
            }
        }

        // Mobility, detouring users away from dead stations.
        self.mobility.step(&self.base.net, &mut self.locations);
        for loc in &mut self.locations {
            if !self.alive[loc.idx()] {
                // Re-attach to the nearest alive station (max channel speed).
                let target = self
                    .base
                    .net
                    .node_ids()
                    .filter(|k| self.alive[k.idx()])
                    .max_by(|&a, &b| {
                        self.base
                            .ap
                            .best_speed(*loc, a)
                            .total_cmp(&self.base.ap.best_speed(*loc, b))
                    });
                if let Some(t) = target {
                    *loc = t;
                }
            }
        }

        // Chain churn + location update.
        let req_cfg = &self.cfg.scenario.requests;
        for (h, (req, &loc)) in self.requests.iter_mut().zip(&self.locations).enumerate() {
            req.location = loc;
            if self.rng.gen::<f64>() < self.cfg.rechain_prob {
                // Chains are re-sampled straight into the request's own
                // buffers; `chain_scratch` is recycled across users and
                // slots (rule `A1-hot-alloc`). Draw order matches the
                // allocating samplers exactly, so seeded runs are unchanged.
                match &self.preferences {
                    Some(prefs) => prefs.sample_chain_into(
                        &self.dataset,
                        h,
                        &mut self.rng,
                        req_cfg.chain_len.0,
                        req_cfg.chain_len.1,
                        &mut self.chain_scratch,
                        &mut req.chain,
                    ),
                    None => self.dataset.sample_chain_into(
                        &mut self.rng,
                        req_cfg.chain_len.0,
                        req_cfg.chain_len.1,
                        &mut self.chain_scratch.attempt,
                        &mut self.chain_scratch.succ,
                        &mut req.chain,
                    ),
                }
                req.edge_data.clear();
                for _ in 0..req.chain.len().saturating_sub(1) {
                    req.edge_data.push(
                        self.rng
                            .gen_range(req_cfg.edge_data.0..=req_cfg.edge_data.1),
                    );
                }
            }
        }

        // Slot scenario: shrink dead nodes' storage to zero so no policy can
        // place instances there; rebuild the substrate graph (cheap) when
        // links are down, but take the path cache from the incrementally
        // maintained APSP — masked links yield bit-identical distance,
        // predecessor and hop tables to a from-scratch rebuild without them,
        // and only trees crossing a flipped link are recomputed.
        let mut sc = self.base.clone();
        sc.requests = self.requests.clone();
        let desired: Vec<f64> = self
            .base
            .net
            .links()
            .iter()
            .enumerate()
            .map(|(idx, l)| if self.alive_links[idx] { l.rate() } else { 0.0 })
            .collect();
        self.apsp.sync_rates(&desired);
        if self.alive_links.iter().any(|&a| !a) {
            sc.ap = self.apsp.all_pairs().clone();
            sc.net = self.base.net.masked_clone(&self.alive_links);
        }
        for i in 0..self.cfg.nodes {
            if !self.alive[i] {
                sc.net.server_mut(NodeId(i as u32)).storage_units = 0.0;
            }
        }
        sc
    }

    /// Run `policy` for the configured number of slots, scoring latency with
    /// the exact (unloaded) routing model.
    pub fn run(&mut self, policy: &Policy) -> Vec<SlotRecord> {
        self.run_measured(policy, |_, _| None)
    }

    /// Like [`run`](Self::run), but lets the caller override the latency
    /// measurement per slot — e.g. with the discrete-event testbed emulator,
    /// which adds the queueing and cold-start effects a real cluster shows.
    /// `measure(scenario, placement)` returns `Some((mean, max))` in seconds
    /// to override, or `None` to keep the unloaded routing measurement.
    pub fn run_measured<F>(&mut self, policy: &Policy, mut measure: F) -> Vec<SlotRecord>
    where
        F: FnMut(&Scenario, &socl_model::Placement) -> Option<(f64, f64)>,
    {
        let remaining = self.cfg.slots.saturating_sub(self.next_slot);
        let mut records = Vec::with_capacity(remaining);
        while self.next_slot < self.cfg.slots {
            records.push(self.step(policy, &mut measure));
        }
        records
    }

    /// Execute exactly one slot and return its record, advancing the slot
    /// clock. [`run_measured`](Self::run_measured) is a loop over this; the
    /// crash-recovery driver calls it directly so it can tear a run down at
    /// any slot boundary and resume from a restored checkpoint.
    pub fn step<F>(&mut self, policy: &Policy, measure: &mut F) -> SlotRecord
    where
        F: FnMut(&Scenario, &socl_model::Placement) -> Option<(f64, f64)>,
    {
        let slot = self.next_slot;
        {
            let mut sc = self.advance();
            let t = Stopwatch::start();
            let mut placement = policy.place(&sc, slot as u64);
            let solve_time = t.elapsed();

            // Serverless control plane: merge warm cells into the committed
            // placement, shed per admission policy, run one scaler step.
            let mut scale_ups = 0usize;
            let mut scale_downs = 0usize;
            let mut shed_requests = 0usize;
            if let Some(scaler) = self.scaler.as_mut() {
                if slot == 0 {
                    scaler.seed_from_placement(&placement, &sc.catalog, &sc.net);
                } else {
                    // Cells still holding warm replicas survive the policy
                    // re-solve; pools on since-dead nodes are torn down.
                    let mut counts = scaler.counts().clone();
                    socl_core::merge_scaler_owned(&sc, &mut placement, &mut counts);
                    scaler.restore_counts(counts);
                }
                // Observed demand: instantaneous concurrency per service is
                // the number of chain stages that traverse it this slot.
                let mut demand = vec![0.0f64; sc.catalog.len()];
                for req in &sc.requests {
                    for &m in &req.chain {
                        demand[m.idx()] += 1.0;
                    }
                }
                // Admission: a request is shed when any of its chain stages
                // must yield at the current overload.
                if scaler.config().admission.enabled {
                    let offered = sc.requests.len();
                    sc.requests.retain(|req| {
                        req.chain
                            .iter()
                            .all(|&m| scaler.admit(m, req.chain.len(), demand[m.idx()]))
                    });
                    shed_requests = offered - sc.requests.len();
                }
                let tick_t = slot as f64 * scaler.config().scale_interval;
                let (u0, d0) = scaler.events();
                scaler.tick(tick_t, &demand, &placement, &sc.catalog, &sc.net);
                let (u1, d1) = scaler.events();
                scale_ups = (u1 - u0) as usize;
                scale_downs = (d1 - d0) as usize;
            }

            // Mid-slot crash: a node dies *after* the policy committed its
            // placement, stranding every instance it hosted.
            let mut mid_slot_failures = 0usize;
            let mut repair_time = Duration::ZERO;
            let mut repair_churn = 0usize;
            if self.cfg.mid_slot_fail_prob > 0.0 {
                let alive_count = self.alive.iter().filter(|&&a| a).count();
                if alive_count > 1 && self.rng.gen::<f64>() < self.cfg.mid_slot_fail_prob {
                    // Crash where it hurts: the alive node hosting the most
                    // instances of the committed placement (lowest index on
                    // ties). Deterministic given the slot's placement, so
                    // repair-on and repair-off runs see the same victims.
                    let mut victim = usize::MAX;
                    let mut most = 0usize;
                    for i in 0..self.cfg.nodes {
                        if !self.alive[i] {
                            continue;
                        }
                        let hosted = placement.services_count_on(NodeId(i as u32));
                        if victim == usize::MAX || hosted > most {
                            victim = i;
                            most = hosted;
                        }
                    }
                    // The victim stays down into following slots until the
                    // between-slot recovery process revives it.
                    self.alive[victim] = false;
                    let v = NodeId(victim as u32);
                    sc.net.server_mut(v).storage_units = 0.0;
                    mid_slot_failures = 1;
                    if self.cfg.repair {
                        let t = Stopwatch::start();
                        if let Some(scaler) = self.scaler.as_mut() {
                            // Replica-aware repair: stranded warm pools are
                            // re-homed onto the surviving hosts.
                            let out =
                                socl_core::repair_with_replicas(&sc, &placement, scaler.counts());
                            repair_time = t.elapsed();
                            repair_churn = out.report.churn;
                            placement = out.report.placement;
                            scaler.restore_counts(out.counts);
                        } else {
                            let report = socl_core::repair_placement(&sc, &placement);
                            repair_time = t.elapsed();
                            repair_churn = report.churn;
                            placement = report.placement;
                        }
                    } else {
                        // Unrepaired: the stranded instances are simply
                        // gone and the slot is served without them.
                        for i in 0..placement.services() {
                            placement.set(socl_model::ServiceId(i as u32), v, false);
                        }
                        if let Some(scaler) = self.scaler.as_mut() {
                            for i in 0..sc.catalog.len() {
                                scaler.confirm(socl_model::ServiceId(i as u32), v, 0);
                            }
                        }
                    }
                }
            }

            let ev = evaluate(&sc, &placement);
            let (mean_latency, max_latency) =
                measure(&sc, &placement).unwrap_or_else(|| (ev.mean_latency(), ev.max_latency()));
            let replicas = self
                .scaler
                .as_ref()
                .map(|s| s.counts().total())
                .unwrap_or(0);
            self.billed_replica_slots = self
                .billed_replica_slots
                .saturating_add(u64::from(replicas));
            self.next_slot += 1;
            SlotRecord {
                slot,
                objective: ev.objective,
                cost: ev.cost,
                mean_latency,
                max_latency,
                fallbacks: ev.cloud_fallbacks,
                solve_time,
                failed_nodes: self.alive.iter().filter(|&&a| !a).count(),
                mid_slot_failures,
                repair_time,
                repair_churn,
                scale_ups,
                scale_downs,
                shed_requests,
                replicas,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socl_core::SoclConfig;

    fn small_cfg(seed: u64) -> OnlineConfig {
        OnlineConfig {
            slots: 6,
            users: 20,
            nodes: 8,
            seed,
            ..OnlineConfig::default()
        }
    }

    #[test]
    fn simulation_produces_one_record_per_slot() {
        let mut sim = OnlineSimulator::new(small_cfg(1));
        let records = sim.run(&Policy::Socl(SoclConfig::default()));
        assert_eq!(records.len(), 6);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.slot, i);
            assert!(r.objective > 0.0);
            assert!(r.mean_latency >= 0.0);
            assert!(r.max_latency >= r.mean_latency);
        }
    }

    #[test]
    fn socl_serves_all_requests_each_slot() {
        let mut sim = OnlineSimulator::new(small_cfg(2));
        let records = sim.run(&Policy::Socl(SoclConfig::default()));
        for r in &records {
            assert_eq!(r.fallbacks, 0, "slot {} had fallbacks", r.slot);
        }
    }

    fn reactive() -> socl_autoscale::AutoscaleConfig {
        socl_autoscale::AutoscaleConfig {
            min_replicas: 1,
            stable_window: 8.0,
            panic_window: 2.0,
            scale_interval: 1.0,
            down_cooldown: 2.0,
            keep_alive: socl_autoscale::KeepAlivePolicy::Fixed(2.0),
            ..socl_autoscale::AutoscaleConfig::default()
        }
    }

    #[test]
    fn legacy_runs_report_no_control_plane_activity() {
        let mut sim = OnlineSimulator::new(small_cfg(3));
        let records = sim.run(&Policy::Socl(SoclConfig::default()));
        for r in &records {
            assert_eq!(r.scale_ups + r.scale_downs + r.shed_requests, 0);
            assert_eq!(r.replicas, 0);
        }
        assert!(sim.replica_counts().is_none());
    }

    #[test]
    fn control_plane_tracks_replicas_and_is_deterministic() {
        let cfg = OnlineConfig {
            autoscale: Some(reactive()),
            ..small_cfg(30)
        };
        let run = || {
            let mut sim = OnlineSimulator::new(cfg.clone());
            let records = sim.run(&Policy::Socl(SoclConfig::default()));
            assert_eq!(
                sim.replica_counts().map(|c| c.total()),
                records.last().map(|r| r.replicas)
            );
            records
        };
        let (a, b) = (run(), run());
        for (ra, rb) in a.iter().zip(&b) {
            assert!(
                ra.replicas > 0,
                "slot {} ran with no warm replicas",
                ra.slot
            );
            assert_eq!(ra.scale_ups, rb.scale_ups);
            assert_eq!(ra.scale_downs, rb.scale_downs);
            assert_eq!(ra.shed_requests, rb.shed_requests);
            assert_eq!(ra.replicas, rb.replicas);
            assert_eq!(ra.mean_latency.to_bits(), rb.mean_latency.to_bits());
        }
    }

    #[test]
    fn admission_sheds_under_a_tight_queue_limit() {
        let cfg = OnlineConfig {
            autoscale: Some(socl_autoscale::AutoscaleConfig {
                admission: socl_autoscale::AdmissionPolicy {
                    enabled: true,
                    queue_limit: 0.05,
                    classes: 2,
                    strict_overload: 4.0,
                },
                ..reactive()
            }),
            ..small_cfg(31)
        };
        let mut sim = OnlineSimulator::new(cfg);
        let records = sim.run(&Policy::Socl(SoclConfig::default()));
        let shed: usize = records.iter().map(|r| r.shed_requests).sum();
        assert!(shed > 0, "nothing shed at queue limit 0.05");
        // The latency score must still be finite for the admitted share.
        for r in &records {
            assert!(r.mean_latency.is_finite());
        }
    }

    #[test]
    fn repair_preserves_warm_pools_across_mid_slot_crashes() -> Result<(), ControlPlaneDisabled> {
        let cfg = OnlineConfig {
            mid_slot_fail_prob: 1.0,
            repair: true,
            autoscale: Some(reactive()),
            ..small_cfg(32)
        };
        let mut sim = OnlineSimulator::new(cfg);
        let records = sim.run(&Policy::Socl(SoclConfig::default()));
        assert!(records.iter().any(|r| r.mid_slot_failures > 0));
        for r in &records {
            assert!(r.replicas > 0, "slot {} lost every warm replica", r.slot);
        }
        let counts = sim.replica_counts_checked()?;
        assert!(counts.total() > 0);
        Ok(())
    }

    #[test]
    fn control_plane_accessor_reports_a_structured_error() {
        let sim = OnlineSimulator::new(small_cfg(33));
        assert_eq!(sim.replica_counts_checked(), Err(ControlPlaneDisabled));
        // The error carries a human-readable explanation.
        assert!(ControlPlaneDisabled.to_string().contains("autoscale"));
    }

    #[test]
    fn scheduled_faults_apply_at_their_slot_and_checkpoint_cursor_advances() {
        use socl_net::NodeId;
        let schedule = FaultSchedule::from_events(vec![
            crate::faults::FaultEvent {
                time: 0.0,
                kind: FaultKind::NodeCrash(NodeId(2)),
            },
            crate::faults::FaultEvent {
                time: 650.0, // slot 2 at 300 s slots
                kind: FaultKind::NodeRecover(NodeId(2)),
            },
        ]);
        let cfg = OnlineConfig {
            faults: schedule,
            ..small_cfg(34)
        };
        let mut sim = OnlineSimulator::new(cfg);
        let records = sim.run(&Policy::Socl(SoclConfig::default()));
        assert_eq!(records[0].failed_nodes, 1, "crash missed its slot");
        assert_eq!(records[1].failed_nodes, 1);
        assert_eq!(records[2].failed_nodes, 0, "recovery missed its slot");
        assert_eq!(sim.fault_cursor, 2, "cursor must consume applied events");
    }

    #[test]
    fn empty_schedule_changes_nothing() {
        let run = |faults| {
            let cfg = OnlineConfig {
                faults,
                fail_prob: 0.3,
                recover_prob: 0.4,
                ..small_cfg(35)
            };
            OnlineSimulator::new(cfg)
                .run(&Policy::Socl(SoclConfig::default()))
                .iter()
                .map(|r| (r.objective.to_bits(), r.failed_nodes))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(FaultSchedule::empty()), run(FaultSchedule::default()));
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = |seed| {
            let mut sim = OnlineSimulator::new(small_cfg(seed));
            sim.run(&Policy::Jdr)
                .iter()
                .map(|r| r.objective)
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn user_state_evolves_across_slots() {
        let mut sim = OnlineSimulator::new(small_cfg(5));
        let first = sim.advance();
        let second = sim.advance();
        // With 20 users, 40% mobility and 30% chain churn, the request sets
        // almost surely differ between consecutive slots.
        assert_ne!(first.requests, second.requests);
    }

    #[test]
    fn preference_mode_keeps_chains_self_similar() {
        use socl_model::chain_similarity;
        // Two simulators differing only in the preference flag; measure the
        // mean similarity of each user's chain across consecutive slots.
        let sim_mean = |prefs: bool| -> f64 {
            let mut sim = OnlineSimulator::new(OnlineConfig {
                rechain_prob: 1.0, // re-draw every chain every slot
                user_preferences: prefs,
                ..small_cfg(13)
            });
            let mut total = 0.0;
            let mut n = 0.0;
            let mut prev = sim.advance().requests;
            for _ in 0..6 {
                let cur = sim.advance().requests;
                for (a, b) in prev.iter().zip(&cur) {
                    total += chain_similarity(&a.chain, &b.chain);
                    n += 1.0;
                }
                prev = cur;
            }
            total / n
        };
        let with = sim_mean(true);
        let without = sim_mean(false);
        assert!(
            with > without,
            "preference chains ({with:.3}) should be more self-similar than random ({without:.3})"
        );
    }

    #[test]
    fn link_failures_degrade_but_never_partition() {
        let cfg = OnlineConfig {
            link_fail_prob: 0.9,
            link_recover_prob: 0.2,
            ..small_cfg(11)
        };
        let mut sim = OnlineSimulator::new(cfg);
        // Run several slots; the substrate must stay connected throughout
        // and SoCL must keep serving from the edge.
        for _ in 0..8 {
            let sc = sim.advance();
            assert!(sc.net.is_connected(), "link failure partitioned the net");
            let placement = Policy::Socl(SoclConfig::default()).place(&sc, 0);
            let ev = evaluate(&sc, &placement);
            assert_eq!(ev.cloud_fallbacks, 0);
        }
        // Failures must actually have occurred at p = 0.9.
        assert!(
            sim.alive_links.iter().any(|&a| !a) || sim.base.net.link_count() == 0,
            "no link ever failed at p=0.9"
        );
    }

    #[test]
    fn incremental_apsp_matches_full_rebuild_every_slot() {
        let cfg = OnlineConfig {
            link_fail_prob: 0.9,
            link_recover_prob: 0.3,
            ..small_cfg(17)
        };
        let mut sim = OnlineSimulator::new(cfg);
        let mut saw_failure = false;
        for _ in 0..10 {
            let sc = sim.advance();
            saw_failure |= sim.alive_links.iter().any(|&a| !a);
            let rebuilt = socl_net::AllPairs::build_serial(&sc.net);
            assert!(
                sc.ap.identical(&rebuilt),
                "slot APSP diverged from a from-scratch rebuild"
            );
        }
        assert!(saw_failure, "no link ever failed at p=0.9");
        let stats = sim.apsp_stats();
        assert!(stats.incremental_updates > 0, "cache never engaged");
        assert!(
            stats.rows_reused > 0,
            "incremental updates reused no rows: {stats:?}"
        );
        assert_eq!(stats.full_rebuilds, 1, "slots fell back to full rebuilds");
    }

    #[test]
    fn mid_slot_crashes_with_repair_keep_serving() {
        let cfg = OnlineConfig {
            mid_slot_fail_prob: 0.8,
            recover_prob: 0.4,
            repair: true,
            slots: 8,
            ..small_cfg(7)
        };
        let mut sim = OnlineSimulator::new(cfg);
        let records = sim.run(&Policy::Socl(SoclConfig::default()));
        // Crashes must actually land mid-slot…
        assert!(records.iter().any(|r| r.mid_slot_failures > 0));
        // …repair must have done work at least once…
        assert!(records.iter().any(|r| r.repair_churn > 0));
        // …and at least one crashed slot must end up fully restored (the
        // crash takes out the *most-loaded* node, so with several nodes
        // already down the survivors cannot always absorb everything).
        assert!(
            records
                .iter()
                .any(|r| r.mid_slot_failures > 0 && r.fallbacks == 0),
            "repair never fully restored a crashed slot: {records:?}"
        );
    }

    #[test]
    fn repair_never_serves_worse_than_no_repair() {
        let run = |repair: bool| {
            let cfg = OnlineConfig {
                mid_slot_fail_prob: 0.8,
                recover_prob: 0.4,
                repair,
                slots: 8,
                ..small_cfg(8)
            };
            OnlineSimulator::new(cfg).run(&Policy::Socl(SoclConfig::default()))
        };
        let with = run(true);
        let without = run(false);
        // Identical seeds drive identical crash sequences, so the records
        // pair up slot by slot; repair can only remove fallbacks.
        let fb_with: usize = with.iter().map(|r| r.fallbacks).sum();
        let fb_without: usize = without.iter().map(|r| r.fallbacks).sum();
        assert!(
            fb_with <= fb_without,
            "repair increased fallbacks: {fb_with} vs {fb_without}"
        );
        // Repair reports latency only on the slots where it ran.
        for r in &with {
            if r.mid_slot_failures == 0 {
                assert_eq!(r.repair_churn, 0);
                assert!(r.repair_time.is_zero());
            }
        }
        for r in &without {
            assert_eq!(r.repair_churn, 0);
        }
    }

    #[test]
    fn failure_injection_keeps_system_serving() {
        let cfg = OnlineConfig {
            fail_prob: 0.8,
            recover_prob: 0.3,
            ..small_cfg(6)
        };
        let mut sim = OnlineSimulator::new(cfg);
        let records = sim.run(&Policy::Socl(SoclConfig::default()));
        // Failures must actually occur…
        assert!(records.iter().any(|r| r.failed_nodes > 0));
        // …and SoCL must keep serving everyone from the remaining nodes.
        for r in &records {
            assert_eq!(r.fallbacks, 0, "slot {}: fallbacks under failure", r.slot);
        }
    }
}
